// HTTP surface of a worker: the partial-aggregate RPC plus health,
// stats, and metrics endpoints, mounted by `assessd -worker`.
package dist

import (
	"encoding/json"
	"net/http"

	"github.com/assess-olap/assess/internal/obsv"
)

// Handler returns the worker's HTTP mux:
//
//	POST /dist/scan    partial-aggregate scan (binary response)
//	POST /dist/append  append one row to this worker's shard
//	GET  /dist/stats   worker snapshot (JSON)
//	GET  /healthz      readiness probe
//	GET  /metrics      Prometheus text format
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /dist/scan", w.handleScan)
	mux.HandleFunc("POST /dist/append", w.handleAppend)
	mux.HandleFunc("GET /dist/stats", w.handleStats)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		rw.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obsv.Default.WritePrometheus(rw)
	})
	return mux
}

func (w *Worker) handleScan(rw http.ResponseWriter, r *http.Request) {
	var req ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	gen, c, err := w.Scan(r.Context(), &req)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(EncodeResponse(gen, c))
}

func (w *Worker) handleAppend(rw http.ResponseWriter, r *http.Request) {
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	gen, err := w.Append(req.Fact, req.Keys, req.Vals)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(appendResponse{Generation: gen})
}

func (w *Worker) handleStats(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(w.Stats())
}
