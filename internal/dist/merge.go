// Cross-shard partial merge: the coordinator-side half of the
// distributive/algebraic decomposition in dist.go. Shard partials are
// folded pairwise in log-depth rounds — the same shape as the engine's
// in-process merge tree (engine/parallel.go) — and finalized into the
// cube the engine's own solo scan would have produced.
package dist

import (
	"sort"
	"sync"

	"github.com/assess-olap/assess/internal/cube"
	"github.com/assess-olap/assess/internal/mdm"
)

// pcell is one merged cell: a coordinate and one value per partial
// column.
type pcell struct {
	coord mdm.Coordinate
	vals  []float64
}

// partialTable accumulates shard partials keyed by coordinate.
type partialTable struct {
	cells map[string]*pcell
}

// tableFrom indexes one shard's decoded partial cube.
func tableFrom(c *cube.Cube) *partialTable {
	t := &partialTable{cells: make(map[string]*pcell, c.Len())}
	for i, coord := range c.Coords {
		vals := make([]float64, len(c.Cols))
		for j := range c.Cols {
			vals[j] = c.Cols[j][i]
		}
		t.cells[coord.Key()] = &pcell{coord: coord, vals: vals}
	}
	return t
}

// mergeInto folds src into dst with the plan's per-column combine ops.
func (p *partialPlan) mergeInto(dst, src *partialTable) {
	for key, sc := range src.cells {
		dc, ok := dst.cells[key]
		if !ok {
			dst.cells[key] = sc
			continue
		}
		for j, op := range p.merge {
			switch op {
			case mdm.AggMin:
				if sc.vals[j] < dc.vals[j] {
					dc.vals[j] = sc.vals[j]
				}
			case mdm.AggMax:
				if sc.vals[j] > dc.vals[j] {
					dc.vals[j] = sc.vals[j]
				}
			default: // AggSum
				dc.vals[j] += sc.vals[j]
			}
		}
	}
}

// mergeTree folds shard partials pairwise in ceil(log2(n)) concurrent
// rounds, mirroring the engine's in-process merge tree. Distributive
// combines are associative and commutative, so tree shape does not
// change the result.
func (p *partialPlan) mergeTree(parts []*partialTable) *partialTable {
	if len(parts) == 0 {
		return &partialTable{cells: make(map[string]*pcell)}
	}
	for len(parts) > 1 {
		half := (len(parts) + 1) / 2
		var wg sync.WaitGroup
		for i := 0; i+half < len(parts); i++ {
			wg.Add(1)
			go func(dst, src *partialTable) {
				defer wg.Done()
				p.mergeInto(dst, src)
			}(parts[i], parts[i+half])
		}
		wg.Wait()
		parts = parts[:half]
	}
	return parts[0]
}

// finalize turns the merged partial table into the requested cube:
// AVG cells divide sum by count, COUNT cells surface the count, and
// everything else passes through. Cells are emitted in ascending
// coordinate-id order — the same canonical order the engine's
// partitioned scans produce, which exec's canonicalization and the
// query layer's SortByCoordinate both accept.
func (p *partialPlan) finalize(s *mdm.Schema, g mdm.GroupBy, names []string, t *partialTable) (*cube.Cube, error) {
	cells := make([]*pcell, 0, len(t.cells))
	for _, c := range t.cells {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(a, b int) bool {
		ca, cb := cells[a].coord, cells[b].coord
		for k := range ca {
			if ca[k] != cb[k] {
				return ca[k] < cb[k]
			}
		}
		return false
	})
	out := cube.New(s, g, names...)
	vals := make([]float64, len(p.out))
	for _, c := range cells {
		for j, cols := range p.out {
			switch p.finalOps[j] {
			case mdm.AggAvg:
				vals[j] = c.vals[cols[0]] / c.vals[cols[1]]
			default:
				vals[j] = c.vals[cols[0]]
			}
		}
		if err := out.AddCell(c.coord, vals); err != nil {
			return nil, err
		}
	}
	return out, nil
}
