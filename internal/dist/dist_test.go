package dist

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"github.com/assess-olap/assess/internal/cube"
	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/mdm"
	"github.com/assess-olap/assess/internal/sales"
)

// testRig is a coordinator over an in-process cluster plus a solo
// engine holding the same fact, so tests can diff distributed results
// against the engine's own scans.
type testRig struct {
	ds    *sales.Dataset
	coord *Coordinator
	lc    *LocalCluster
	eng   *engine.Engine
	level mdm.LevelRef
}

func newRig(t *testing.T, rows, shards int, cfg Config, chains func(*LocalCluster) [][]ShardClient) *testRig {
	t.Helper()
	ds := sales.Generate(rows, 7)
	eng := engine.New()
	if err := eng.Register("SALES", ds.Fact); err != nil {
		t.Fatal(err)
	}
	level := mdm.LevelRef{Hier: 2, Level: 0} // product, the widest base dict
	lc := NewLocalCluster(shards)
	if err := lc.AddFact("SALES", ds.Fact, level); err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(eng, cfg)
	cl := lc.Clients()
	if chains != nil {
		cl = chains(lc)
	}
	if err := coord.AddTable("SALES", level, cl, true); err != nil {
		t.Fatal(err)
	}
	return &testRig{ds: ds, coord: coord, lc: lc, eng: eng, level: level}
}

// diffCubes compares two cubes cell-by-cell. Sales measures are
// floats, so cross-shard sums may differ from a solo scan by a few
// ULPs (float addition is not associative); a tiny relative tolerance
// absorbs that. Bit-exactness over integer measures — where any
// association order is exact — is proven by the oracle's sharded axes.
func diffCubes(t *testing.T, label string, want, got *cube.Cube) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d cells, want %d", label, got.Len(), want.Len())
	}
	if len(want.Cols) != len(got.Cols) {
		t.Fatalf("%s: %d columns, want %d", label, len(got.Cols), len(want.Cols))
	}
	for i, coord := range want.Coords {
		j, ok := got.Lookup(coord)
		if !ok {
			t.Fatalf("%s: missing coordinate %v", label, coord)
		}
		for c := range want.Cols {
			w, g := want.Cols[c][i], got.Cols[c][j]
			if w == g {
				continue
			}
			if d := math.Abs(w - g); d > 1e-9*math.Max(math.Abs(w), math.Abs(g)) {
				t.Errorf("%s: cell %v col %s: got %v, want %v",
					label, coord, want.Names[c], g, w)
			}
		}
	}
}

var testQueries = []struct {
	name  string
	group mdm.GroupBy
	preds []engine.Predicate
	meas  []int
	ops   []mdm.AggOp
}{
	{
		name:  "sum-by-country",
		group: mdm.GroupBy{{Hier: 3, Level: 2}},
		meas:  []int{0, 1},
		ops:   []mdm.AggOp{mdm.AggSum, mdm.AggSum},
	},
	{
		name:  "all-ops-by-category",
		group: mdm.GroupBy{{Hier: 2, Level: 2}},
		meas:  []int{0, 0, 0, 0, 1},
		ops:   []mdm.AggOp{mdm.AggSum, mdm.AggAvg, mdm.AggMin, mdm.AggMax, mdm.AggCount},
	},
	{
		name:  "avg-two-dims",
		group: mdm.GroupBy{{Hier: 0, Level: 2}, {Hier: 1, Level: 1}},
		meas:  []int{2},
		ops:   []mdm.AggOp{mdm.AggAvg},
	},
	{
		name:  "pred-on-shard-level",
		group: mdm.GroupBy{{Hier: 3, Level: 1}},
		preds: []engine.Predicate{{Level: mdm.LevelRef{Hier: 2, Level: 0}, Members: []int32{1, 4, 9}}},
		meas:  []int{1},
		ops:   []mdm.AggOp{mdm.AggSum},
	},
	{
		name:  "pred-coarser-than-shard-level",
		group: mdm.GroupBy{{Hier: 0, Level: 1}},
		preds: []engine.Predicate{{Level: mdm.LevelRef{Hier: 2, Level: 2}, Members: []int32{0}}},
		meas:  []int{0, 2},
		ops:   []mdm.AggOp{mdm.AggSum, mdm.AggAvg},
	},
	{
		name:  "pred-other-hierarchy",
		group: mdm.GroupBy{{Hier: 2, Level: 1}},
		preds: []engine.Predicate{{Level: mdm.LevelRef{Hier: 3, Level: 2}, Members: []int32{0, 1}}},
		meas:  []int{1},
		ops:   []mdm.AggOp{mdm.AggSum},
	},
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("m%d", i)
	}
	return out
}

// TestScatterGatherMatchesSolo diffs the coordinator's merged result
// against the engine's own solo scan for every query shape and several
// shard counts, bit-exact.
func TestScatterGatherMatchesSolo(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5} {
		rig := newRig(t, 4000, shards, Config{}, nil)
		for _, tq := range testQueries {
			q := engine.Query{Fact: "SALES", Group: tq.group, Preds: tq.preds, Measures: tq.meas}
			nm := names(len(tq.ops))
			want, err := rig.eng.ScanWithOps(q, tq.ops, nm)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rig.coord.Scan(context.Background(), q, tq.ops, nm)
			if err != nil {
				t.Fatal(err)
			}
			diffCubes(t, fmt.Sprintf("%d shards/%s", shards, tq.name), want, got)
		}
	}
}

// TestSplitFactPartitions checks the split covers every row exactly
// once and places rows deterministically by member hash.
func TestSplitFactPartitions(t *testing.T) {
	ds := sales.Generate(1000, 3)
	level := mdm.LevelRef{Hier: 2, Level: 0}
	shards, err := SplitFact(ds.Fact, level, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s, sf := range shards {
		total += sf.Rows()
		for r := 0; r < sf.Rows(); r++ {
			if got := shardOf(sf.Keys[2][r], 4); got != s {
				t.Fatalf("row with product %d on shard %d, hash says %d", sf.Keys[2][r], s, got)
			}
		}
	}
	if total != ds.Fact.Rows() {
		t.Fatalf("shards hold %d rows, fact has %d", total, ds.Fact.Rows())
	}
	again, err := SplitFact(ds.Fact, level, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := range shards {
		if shards[s].Rows() != again[s].Rows() {
			t.Fatalf("split not deterministic: shard %d has %d then %d rows", s, shards[s].Rows(), again[s].Rows())
		}
	}
}

// TestRoutingPrunesShards asserts a shard-level equality predicate
// fans out to exactly the owning shard, and that unpredicated scans
// touch every shard.
func TestRoutingPrunesShards(t *testing.T) {
	rig := newRig(t, 2000, 4, Config{}, nil)
	member := int32(5)
	q := engine.Query{
		Fact:     "SALES",
		Group:    mdm.GroupBy{{Hier: 3, Level: 2}},
		Preds:    []engine.Predicate{{Level: rig.level, Members: []int32{member}}},
		Measures: []int{0},
	}
	ops := []mdm.AggOp{mdm.AggSum}
	if _, err := rig.coord.Scan(context.Background(), q, ops, names(1)); err != nil {
		t.Fatal(err)
	}
	owner := shardOf(member, 4)
	st := rig.coord.Stats()
	for _, sh := range st.Tables[0].Shards {
		want := int64(0)
		if sh.Shard == owner {
			want = 1
		}
		if sh.Scans != want {
			t.Errorf("shard %d: %d scans after routed query, want %d", sh.Shard, sh.Scans, want)
		}
	}
	q.Preds = nil
	if _, err := rig.coord.Scan(context.Background(), q, ops, names(1)); err != nil {
		t.Fatal(err)
	}
	st = rig.coord.Stats()
	for _, sh := range st.Tables[0].Shards {
		want := int64(1)
		if sh.Shard == owner {
			want = 2
		}
		if sh.Scans != want {
			t.Errorf("shard %d: %d scans after full fanout, want %d", sh.Shard, sh.Scans, want)
		}
	}
}

// TestWireRoundTrip locks the binary response format: coordinates and
// float64 bit patterns survive encode/decode, and shape mismatches are
// rejected.
func TestWireRoundTrip(t *testing.T) {
	ds := sales.Generate(10, 1)
	g := mdm.GroupBy{{Hier: 2, Level: 1}, {Hier: 3, Level: 0}}
	c := cube.New(ds.Schema, g, "p0", "p1")
	c.MustAddCell(mdm.Coordinate{1, 2}, 3.5, -0)
	c.MustAddCell(mdm.Coordinate{0, 7}, 1e-300, 42)
	gen, got, err := DecodeResponse(ds.Schema, g, []string{"p0", "p1"}, EncodeResponse(99, c))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 99 {
		t.Fatalf("generation %d, want 99", gen)
	}
	diffCubes(t, "wire", c, got)
	if _, _, err := DecodeResponse(ds.Schema, g, []string{"p0"}, EncodeResponse(0, c)); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
	if _, _, err := DecodeResponse(ds.Schema, g, []string{"p0", "p1"}, []byte("junk")); err == nil {
		t.Fatal("garbage not rejected")
	}
}

// TestGenerationReconciliation drives an append directly into a worker
// shard (bypassing the coordinator) and checks the next merge folds the
// shard's new generation into the local fact's version — the mechanism
// that keeps the query cache coherent with remote appends.
func TestGenerationReconciliation(t *testing.T) {
	rig := newRig(t, 500, 2, Config{}, nil)
	q := engine.Query{Fact: "SALES", Group: mdm.GroupBy{{Hier: 3, Level: 2}}, Measures: []int{0}}
	ops := []mdm.AggOp{mdm.AggSum}
	if _, err := rig.coord.Scan(context.Background(), q, ops, names(1)); err != nil {
		t.Fatal(err)
	}
	before := rig.ds.Fact.Version()

	keys := []int32{0, 0, 0, 0}
	vals := []float64{1, 1, 1}
	if _, err := rig.lc.Workers[shardOf(rollKey(rig.ds.Schema, rig.level, 0), 2)].Append("SALES", keys, vals); err != nil {
		t.Fatal(err)
	}
	if got := rig.ds.Fact.Version(); got != before {
		t.Fatalf("local version moved without a merge: %d, want %d", got, before)
	}
	if _, err := rig.coord.Scan(context.Background(), q, ops, names(1)); err != nil {
		t.Fatal(err)
	}
	if got := rig.ds.Fact.Version(); got != before+1 {
		t.Fatalf("version after reconciling merge: %d, want %d", got, before+1)
	}
	// A second merge must not double-count the same append.
	if _, err := rig.coord.Scan(context.Background(), q, ops, names(1)); err != nil {
		t.Fatal(err)
	}
	if got := rig.ds.Fact.Version(); got != before+1 {
		t.Fatalf("version after second merge: %d, want %d", got, before+1)
	}
}

// TestCoordinatorAppend routes an append through the coordinator: the
// owning shard and the local copy both grow, the version advances
// exactly once, and subsequent scans see the row.
func TestCoordinatorAppend(t *testing.T) {
	rig := newRig(t, 500, 3, Config{}, nil)
	q := engine.Query{Fact: "SALES", Group: mdm.GroupBy{{Hier: 3, Level: 2}}, Measures: []int{0}}
	ops := []mdm.AggOp{mdm.AggSum}
	base, err := rig.coord.Scan(context.Background(), q, ops, names(1))
	if err != nil {
		t.Fatal(err)
	}
	before := rig.ds.Fact.Version()
	rowsBefore := rig.ds.Fact.Rows()

	keys := []int32{1, 1, 6, 1}
	vals := []float64{5, 2.5, 1.25}
	if err := rig.coord.Append(context.Background(), "SALES", keys, vals); err != nil {
		t.Fatal(err)
	}
	if got := rig.ds.Fact.Rows(); got != rowsBefore+1 {
		t.Fatalf("local rows %d, want %d", got, rowsBefore+1)
	}
	if got := rig.ds.Fact.Version(); got != before+1 {
		t.Fatalf("version %d after coordinator append, want %d", got, before+1)
	}
	owner := shardOf(rollKey(rig.ds.Schema, rig.level, 6), 3)
	if got := rig.lc.Workers[owner].Stats().Appends; got != 1 {
		t.Fatalf("owning worker saw %d appends, want 1", got)
	}

	got, err := rig.coord.Scan(context.Background(), q, ops, names(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := rig.eng.ScanWithOps(q, ops, names(1))
	if err != nil {
		t.Fatal(err)
	}
	diffCubes(t, "after append", want, got)
	if got.Len() == base.Len() {
		// same cells is fine; the appended row must still be counted
		i, ok := got.Lookup(mdm.Coordinate{rig.ds.Schema.Hiers[3].Rollup(1, 0, 2)})
		if !ok {
			t.Fatal("appended row's country cell missing")
		}
		j, _ := base.Lookup(mdm.Coordinate{rig.ds.Schema.Hiers[3].Rollup(1, 0, 2)})
		if got.Cols[0][i] != base.Cols[0][j]+5 {
			t.Fatalf("appended quantity not visible: %v vs %v", got.Cols[0][i], base.Cols[0][j])
		}
	}
	// Version must not move again on the reconciling scan.
	if got := rig.ds.Fact.Version(); got != before+1 {
		t.Fatalf("version double-counted after scan: %d, want %d", got, before+1)
	}
}

// TestHTTPWorkerRoundTrip serves a worker over HTTP and checks the
// HTTPClient path — scan and append — matches the in-process result.
func TestHTTPWorkerRoundTrip(t *testing.T) {
	rig := newRig(t, 1500, 2, Config{}, nil)
	srvs := make([]*httptest.Server, 2)
	chains := make([][]ShardClient, 2)
	for i, w := range rig.lc.Workers {
		srvs[i] = httptest.NewServer(w.Handler())
		defer srvs[i].Close()
		chains[i] = []ShardClient{&HTTPClient{BaseURL: srvs[i].URL}}
	}
	eng2 := engine.New()
	if err := eng2.Register("SALES", rig.ds.Fact); err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(eng2, Config{})
	if err := coord.AddTable("SALES", rig.level, chains, true); err != nil {
		t.Fatal(err)
	}
	for _, tq := range testQueries {
		q := engine.Query{Fact: "SALES", Group: tq.group, Preds: tq.preds, Measures: tq.meas}
		nm := names(len(tq.ops))
		want, err := rig.eng.ScanWithOps(q, tq.ops, nm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.Scan(context.Background(), q, tq.ops, nm)
		if err != nil {
			t.Fatal(err)
		}
		diffCubes(t, "http/"+tq.name, want, got)
	}
	if err := coord.Append(context.Background(), "SALES", []int32{0, 0, 3, 0}, []float64{2, 1, 1}); err != nil {
		t.Fatal(err)
	}
	owner := shardOf(rollKey(rig.ds.Schema, rig.level, 3), 2)
	if got := rig.lc.Workers[owner].Stats().Appends; got != 1 {
		t.Fatalf("HTTP append did not reach owning worker (appends=%d)", got)
	}
}

// TestParseShardAddrs covers the -shard-addrs grammar.
func TestParseShardAddrs(t *testing.T) {
	chains, err := ParseShardAddrs("http://a|http://b, http://c")
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 2 || len(chains[0]) != 2 || len(chains[1]) != 1 {
		t.Fatalf("unexpected shape: %d groups", len(chains))
	}
	if chains[0][1].Target() != "http://b" || chains[1][0].Target() != "http://c" {
		t.Fatalf("targets misparsed: %q %q", chains[0][1].Target(), chains[1][0].Target())
	}
	if _, err := ParseShardAddrs(""); err == nil {
		t.Fatal("empty spec accepted")
	}
}
