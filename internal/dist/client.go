// Shard clients: how the coordinator reaches a shard's worker. The
// in-process LocalClient round-trips through the same binary wire
// format as the HTTP client, so tests and benchmarks exercise exactly
// the remote encode/decode path.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/assess-olap/assess/internal/cube"
	"github.com/assess-olap/assess/internal/mdm"
)

// ShardClient reaches one replica of one shard.
type ShardClient interface {
	// Scan runs the partial-aggregate RPC; the schema decodes the
	// response. Implementations must honor ctx cancellation promptly —
	// the coordinator's per-shard deadline depends on it.
	Scan(ctx context.Context, req *ScanRequest, s *mdm.Schema) (uint64, *cube.Cube, error)
	// Append routes one appended row to this replica.
	Append(ctx context.Context, fact string, keys []int32, vals []float64) (uint64, error)
	// Target names the replica for stats and errors.
	Target() string
}

// LocalClient calls an in-process worker directly, still passing
// partials through EncodeResponse/DecodeResponse so in-process clusters
// share the remote path's semantics.
type LocalClient struct {
	Worker *Worker
	Name   string
	// Hook, when set, runs before each scan with the request context.
	// Tests inject stragglers (block until ctx expires) and crashes
	// (return an error) through it.
	Hook func(ctx context.Context) error
}

func (c *LocalClient) Target() string {
	if c.Name != "" {
		return c.Name
	}
	return "local"
}

func (c *LocalClient) Scan(ctx context.Context, req *ScanRequest, s *mdm.Schema) (uint64, *cube.Cube, error) {
	if c.Hook != nil {
		if err := c.Hook(ctx); err != nil {
			return 0, nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	gen, pc, err := c.Worker.Scan(ctx, req)
	if err != nil {
		return 0, nil, err
	}
	return DecodeResponse(s, mdm.GroupBy(req.Group), req.Names, EncodeResponse(gen, pc))
}

func (c *LocalClient) Append(ctx context.Context, fact string, keys []int32, vals []float64) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return c.Worker.Append(fact, keys, vals)
}

// HTTPClient reaches an `assessd -worker` process over the HTTP RPC
// (POST /dist/scan, POST /dist/append).
type HTTPClient struct {
	// BaseURL is the worker's address, e.g. "http://127.0.0.1:8311".
	BaseURL string
	// Client defaults to a dedicated client with sane timeouts.
	Client *http.Client
}

func (c *HTTPClient) Target() string { return c.BaseURL }

func (c *HTTPClient) httpClient() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return defaultHTTPClient
}

// defaultHTTPClient bounds dials so a dead worker fails fast; request
// deadlines come from the coordinator's per-shard context.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       30 * time.Second,
		ResponseHeaderTimeout: 0, // ctx-driven
	},
}

func (c *HTTPClient) post(ctx context.Context, path string, body any) ([]byte, error) {
	js, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(js))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: %s%s: %s: %s", c.BaseURL, path, resp.Status, bytes.TrimSpace(data))
	}
	return data, nil
}

func (c *HTTPClient) Scan(ctx context.Context, req *ScanRequest, s *mdm.Schema) (uint64, *cube.Cube, error) {
	data, err := c.post(ctx, "/dist/scan", req)
	if err != nil {
		return 0, nil, err
	}
	return DecodeResponse(s, mdm.GroupBy(req.Group), req.Names, data)
}

type appendRequest struct {
	Fact string    `json:"fact"`
	Keys []int32   `json:"keys"`
	Vals []float64 `json:"vals"`
}

type appendResponse struct {
	Generation uint64 `json:"generation"`
}

func (c *HTTPClient) Append(ctx context.Context, fact string, keys []int32, vals []float64) (uint64, error) {
	data, err := c.post(ctx, "/dist/append", appendRequest{Fact: fact, Keys: keys, Vals: vals})
	if err != nil {
		return 0, err
	}
	var ar appendResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		return 0, err
	}
	return ar.Generation, nil
}

// ParseShardAddrs parses the -shard-addrs flag: comma-separated shard
// groups, each a |-separated primary-then-replicas list of base URLs.
// "http://a|http://b,http://c" → shard 0 with replica, shard 1 without.
func ParseShardAddrs(spec string) ([][]ShardClient, error) {
	if spec == "" {
		return nil, fmt.Errorf("dist: empty shard address list")
	}
	var chains [][]ShardClient
	for _, group := range strings.Split(spec, ",") {
		var chain []ShardClient
		for _, addr := range strings.Split(group, "|") {
			if addr = strings.TrimSpace(addr); addr != "" {
				chain = append(chain, &HTTPClient{BaseURL: addr})
			}
		}
		if len(chain) == 0 {
			return nil, fmt.Errorf("dist: empty shard group in %q", spec)
		}
		chains = append(chains, chain)
	}
	return chains, nil
}
