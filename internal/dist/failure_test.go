package dist

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/assess-olap/assess/internal/cube"
	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/mdm"
)

var errInjected = errors.New("injected worker crash")

func failingChains(lc *LocalCluster, failPrimary map[int]func(context.Context) error, replicas bool) [][]ShardClient {
	chains := make([][]ShardClient, len(lc.Workers))
	for i, w := range lc.Workers {
		primary := &LocalClient{Worker: w, Name: fmt.Sprintf("primary/%d", i)}
		if hook, ok := failPrimary[i]; ok {
			primary.Hook = hook
		}
		chains[i] = []ShardClient{primary}
		if replicas {
			chains[i] = append(chains[i], &LocalClient{Worker: w, Name: fmt.Sprintf("replica/%d", i)})
		}
	}
	return chains
}

func crash(context.Context) error { return errInjected }

// straggle blocks until the per-shard deadline kills the attempt — the
// in-process stand-in for a worker that died mid-query.
func straggle(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// hang blocks forever, ignoring the context entirely: a client that
// violates the cancellation contract. The coordinator must still
// return at its deadline, never hang.
func hang(context.Context) error {
	select {}
}

var failQ = engine.Query{Fact: "SALES", Group: mdm.GroupBy{{Hier: 3, Level: 2}}, Measures: []int{0, 1}}
var failOps = []mdm.AggOp{mdm.AggSum, mdm.AggAvg}

// TestRedispatchToReplica crashes shard 0's primary; the scan must
// succeed bit-exactly via the replica and count one re-dispatch.
func TestRedispatchToReplica(t *testing.T) {
	rig := newRig(t, 2000, 3, Config{}, func(lc *LocalCluster) [][]ShardClient {
		return failingChains(lc, map[int]func(context.Context) error{0: crash}, true)
	})
	want, err := rig.eng.ScanWithOps(failQ, failOps, names(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rig.coord.Scan(context.Background(), failQ, failOps, names(2))
	if err != nil {
		t.Fatal(err)
	}
	diffCubes(t, "redispatch", want, got)
	st := rig.coord.Stats()
	sh := st.Tables[0].Shards[0]
	if sh.Redispatches != 1 || sh.Errors != 1 {
		t.Fatalf("shard 0: redispatches=%d errors=%d, want 1/1", sh.Redispatches, sh.Errors)
	}
	if sh.Fallbacks != 0 {
		t.Fatalf("local fallback used with a healthy replica (%d)", sh.Fallbacks)
	}
}

// TestLocalFallback crashes every replica of shard 1; the coordinator
// must synthesize the shard's partial from its local copy, bit-exactly.
func TestLocalFallback(t *testing.T) {
	rig := newRig(t, 2000, 2, Config{}, func(lc *LocalCluster) [][]ShardClient {
		chains := failingChains(lc, map[int]func(context.Context) error{1: crash}, true)
		chains[1][1].(*LocalClient).Hook = crash // replica dies too
		return chains
	})
	want, err := rig.eng.ScanWithOps(failQ, failOps, names(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rig.coord.Scan(context.Background(), failQ, failOps, names(2))
	if err != nil {
		t.Fatal(err)
	}
	diffCubes(t, "local fallback", want, got)
	sh := rig.coord.Stats().Tables[0].Shards[1]
	if sh.Fallbacks != 1 {
		t.Fatalf("fallbacks=%d, want 1", sh.Fallbacks)
	}
}

// TestPolicyFailUnavailable removes the local fallback: with every
// replica of one shard dead and PolicyFail, the scan must return a
// typed *Unavailable naming the failed shard.
func TestPolicyFailUnavailable(t *testing.T) {
	rig := newRig(t, 1000, 2, Config{Policy: PolicyFail}, func(lc *LocalCluster) [][]ShardClient {
		return failingChains(lc, map[int]func(context.Context) error{1: crash}, false)
	})
	rig.coord.tables["SALES"].fallback = false
	_, err := rig.coord.Scan(context.Background(), failQ, failOps, names(2))
	var u *Unavailable
	if !errors.As(err, &u) {
		t.Fatalf("error %v, want *Unavailable", err)
	}
	if u.Fact != "SALES" || len(u.Shards) != 1 || u.Shards[0] != 1 {
		t.Fatalf("unexpected Unavailable payload: %+v", u)
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("cause not preserved: %v", err)
	}
	if rig.coord.Stats().Unavailable != 1 {
		t.Fatalf("unavailable counter %d, want 1", rig.coord.Stats().Unavailable)
	}
}

// TestPolicyPartialAnnotates uses PolicyPartial with no fallback: the
// merged result must cover the healthy shard only, the context's
// PartialNote must name the degraded shard, and the fact version must
// bump so the degraded result cannot be cache-served as complete.
func TestPolicyPartialAnnotates(t *testing.T) {
	rig := newRig(t, 1000, 2, Config{Policy: PolicyPartial}, func(lc *LocalCluster) [][]ShardClient {
		return failingChains(lc, map[int]func(context.Context) error{0: crash}, false)
	})
	rig.coord.tables["SALES"].fallback = false
	verBefore := rig.ds.Fact.Version()
	ctx, note := TrackPartial(context.Background())
	got, err := rig.coord.Scan(ctx, failQ, failOps, names(2))
	if err != nil {
		t.Fatal(err)
	}
	if !note.Partial() {
		t.Fatal("partial result not recorded in note")
	}
	if ds := note.DegradedShards(); len(ds) != 1 || ds[0] != "SALES/0" {
		t.Fatalf("degraded shards %v, want [SALES/0]", ds)
	}
	// The healthy shard alone: compare against a direct scan of shard 1.
	lq := failQ
	lq.Preds = append([]engine.Predicate(nil), engine.Predicate{
		Level: rig.level, Members: rig.coord.tables["SALES"].owned[1],
	})
	want, err := rig.eng.ScanWithOps(lq, failOps, names(2))
	if err != nil {
		t.Fatal(err)
	}
	diffCubes(t, "partial", want, got)
	if got := rig.ds.Fact.Version(); got <= verBefore {
		t.Fatalf("version %d did not advance past %d: partial could be cached as complete", got, verBefore)
	}
	if rig.coord.Stats().Partials != 1 {
		t.Fatalf("partials counter %d, want 1", rig.coord.Stats().Partials)
	}
}

// TestStragglerRedispatch injects a straggler (blocks until the
// per-shard deadline) as shard 0's primary: the replica must serve the
// shard and the whole scan must complete promptly after one deadline.
func TestStragglerRedispatch(t *testing.T) {
	rig := newRig(t, 2000, 2, Config{ShardTimeout: 50 * time.Millisecond}, func(lc *LocalCluster) [][]ShardClient {
		return failingChains(lc, map[int]func(context.Context) error{0: straggle}, true)
	})
	want, err := rig.eng.ScanWithOps(failQ, failOps, names(2))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := rig.coord.Scan(context.Background(), failQ, failOps, names(2))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("straggler stalled the scan for %v", elapsed)
	}
	diffCubes(t, "straggler", want, got)
	if sh := rig.coord.Stats().Tables[0].Shards[0]; sh.Redispatches != 1 {
		t.Fatalf("redispatches=%d, want 1", sh.Redispatches)
	}
}

// TestHangingClientNeverHangs gives shard 0 a client that ignores
// cancellation entirely and no replica: the coordinator must abandon
// the attempt at its deadline and serve the shard from the local copy.
func TestHangingClientNeverHangs(t *testing.T) {
	rig := newRig(t, 1000, 2, Config{ShardTimeout: 50 * time.Millisecond}, func(lc *LocalCluster) [][]ShardClient {
		return failingChains(lc, map[int]func(context.Context) error{0: hang}, false)
	})
	want, err := rig.eng.ScanWithOps(failQ, failOps, names(2))
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		c   *cube.Cube
		err error
	}
	done := make(chan result, 1)
	go func() {
		c, err := rig.coord.Scan(context.Background(), failQ, failOps, names(2))
		done <- result{c, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		diffCubes(t, "hang", want, r.c)
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator hung on a cancellation-ignoring client")
	}
}

// TestCallerCancellation cancels the caller's context mid-fanout: the
// scan must return the context error, not a policy error.
func TestCallerCancellation(t *testing.T) {
	rig := newRig(t, 1000, 2, Config{ShardTimeout: time.Minute, Policy: PolicyPartial}, func(lc *LocalCluster) [][]ShardClient {
		return failingChains(lc, map[int]func(context.Context) error{0: straggle, 1: straggle}, false)
	})
	rig.coord.tables["SALES"].fallback = false
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := rig.coord.Scan(ctx, failQ, failOps, names(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
