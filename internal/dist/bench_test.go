package dist

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/assess-olap/assess/internal/colstore"
	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/mdm"
	"github.com/assess-olap/assess/internal/persist"
	"github.com/assess-olap/assess/internal/ssb"
)

// benchDataset caches the SSB fact across benchmarks: generation is
// seconds-scale and identical for every cluster shape.
var benchDataset = struct {
	once sync.Once
	ds   *ssb.Dataset
}{}

func benchFact(b *testing.B) *ssb.Dataset {
	b.Helper()
	benchDataset.once.Do(func() { benchDataset.ds = ssb.Generate(0.05, 42) }) // 300k rows
	return benchDataset.ds
}

// benchCluster shards the 300k-row SSB fact by brand into n
// segment-backed workers (small segments, as an out-of-core deployment
// would run them) and returns a coordinator over the cluster. Sharding
// by brand clusters each brand's rows on exactly one worker, so a
// brand-equality query routes to 1 of n shards — on a single core
// that routing, not parallelism, is the speedup.
func benchCluster(b *testing.B, n int) (*Coordinator, *mdm.Schema) {
	b.Helper()
	ds := benchFact(b)
	level, ok := ds.Schema.FindLevel("brand")
	if !ok {
		b.Fatal("ssb schema has no brand level")
	}
	shards, err := SplitFact(ds.Fact, level, n)
	if err != nil {
		b.Fatal(err)
	}

	opts := colstore.Options{SegmentRows: 1 << 12, AutoCompactRows: -1}
	w := make([]*Worker, n)
	for i, sf := range shards {
		dir := filepath.Join(b.TempDir(), fmt.Sprintf("shard%d", i))
		if err := persist.SaveCubeDir(dir, sf, opts); err != nil {
			b.Fatal(err)
		}
		seg, st, err := persist.OpenCubeDir(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { st.Close() })
		// The reopened copy decodes its own hierarchy objects; scans and
		// merges must speak the coordinator's schema.
		persist.ReconcileSchemas(ds.Schema, seg.Schema)
		w[i] = NewWorker()
		if err := w[i].Register("LINEORDER", seg); err != nil {
			b.Fatal(err)
		}
	}

	eng := engine.New()
	if err := eng.Register("LINEORDER", ds.Fact); err != nil {
		b.Fatal(err)
	}
	coord := NewCoordinator(eng, Config{ShardTimeout: time.Minute})
	chains := make([][]ShardClient, n)
	for i := range chains {
		chains[i] = []ShardClient{&LocalClient{Worker: w[i], Name: fmt.Sprintf("bench/%d", i)}}
	}
	if err := coord.AddTable("LINEORDER", level, chains, false); err != nil {
		b.Fatal(err)
	}
	return coord, ds.Schema
}

// benchRoutedQueries is the dashboard burst the speedup benchmark
// replays: 8 distinct roll-ups, each sliced to one brand. On an
// n-shard cluster each routes to the single shard owning that brand
// (~1/n of the fact); a 1-shard cluster scans everything every time.
func benchRoutedQueries(s *mdm.Schema) []engine.Query {
	brand, _ := s.FindLevel("brand")
	nBrands := int32(s.Dict(brand).Len())
	groups := [][]string{
		{"year", "cnation"}, {"month", "cregion"}, {"cnation", "snation"},
		{"cregion", "year"}, {"snation", "month"}, {"year", "category"},
		{"category", "snation"}, {"cnation", "mfgr"},
	}
	qs := make([]engine.Query, len(groups))
	for i, g := range groups {
		qs[i] = engine.Query{
			Fact:  "LINEORDER",
			Group: mdm.MustGroupBy(s, g...),
			Preds: []engine.Predicate{{
				Level:   brand,
				Members: []int32{int32(i*131+7) % nBrands},
			}},
			Measures: []int{0, 1, 2},
		}
	}
	return qs
}

var benchOps = []mdm.AggOp{mdm.AggSum, mdm.AggSum, mdm.AggSum}
var benchNames = []string{"quantity", "revenue", "supplycost"}

func runQueries(b *testing.B, c *Coordinator, qs []engine.Query) {
	b.Helper()
	for _, q := range qs {
		if _, err := c.Scan(context.Background(), q, benchOps, benchNames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedScan is the full-fanout cost: an unpredicated
// roll-up over a 4-shard cluster scatter-gathers to every shard and
// merges the partials — the scatter/encode/decode/merge overhead on
// top of the same total row count a solo scan pays.
func BenchmarkShardedScan(b *testing.B) {
	coord, s := benchCluster(b, 4)
	q := engine.Query{
		Fact:     "LINEORDER",
		Group:    mdm.MustGroupBy(s, "year", "cnation"),
		Measures: []int{0, 1, 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.Scan(context.Background(), q, benchOps, benchNames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedSpeedup measures what sharding buys a routed
// dashboard burst as a paired ratio: each iteration times the 8
// brand-sliced queries on a 4-shard cluster (each routed to ~1/4 of
// the fact) and on a 1-shard cluster (every query scans everything)
// back to back, so host noise cancels out of the reported "speedup"
// metric (median of per-iteration ratios — host-speed independent and
// meaningful at GOMAXPROCS=1, where the win is shard routing, not CPU
// parallelism). Gated in CI at >= 2x by scripts/bench.sh ratio.
func BenchmarkShardedSpeedup(b *testing.B) {
	coord4, s := benchCluster(b, 4)
	coord1, _ := benchCluster(b, 1)
	qs := benchRoutedQueries(s)
	ratios := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		runQueries(b, coord4, qs)
		t1 := time.Now()
		runQueries(b, coord1, qs)
		ratios = append(ratios, float64(time.Since(t1))/float64(t1.Sub(t0)))
	}
	sort.Float64s(ratios)
	b.ReportMetric(ratios[len(ratios)/2], "speedup")
}
