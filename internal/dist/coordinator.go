// Coordinator: plans each fact scan once, fans per-shard requests out
// concurrently, and merges the partials. It implements
// engine.ScanBatcher, so installing it on a session routes every
// query-path scan here; facts without a shard table fall through to the
// previously-installed batcher (shared-scan admission) or a direct
// engine scan, which keeps distribution composable with the scheduler.
package dist

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/assess-olap/assess/internal/cube"
	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/mdm"
	"github.com/assess-olap/assess/internal/storage"
)

// DefaultShardTimeout bounds one scan attempt against one replica.
const DefaultShardTimeout = 2 * time.Second

// Config tunes the coordinator's failure handling.
type Config struct {
	// ShardTimeout is the per-attempt deadline for one replica
	// (DefaultShardTimeout when zero).
	ShardTimeout time.Duration
	// Policy decides what happens when a shard cannot be served at all.
	Policy Policy
}

// unseenGen marks a shard whose generation the coordinator has not
// observed yet; the first response initializes the expectation.
const unseenGen = ^uint64(0)

// shardState is the coordinator's bookkeeping for one shard of one
// fact.
type shardState struct {
	clients []ShardClient // primary first, then replicas
	// expect is the last reconciled shard generation (unseenGen until
	// the first response).
	expect atomic.Uint64
	// counters surfaced in Stats.
	scans, errors, redispatches, fallbacks atomic.Int64
}

// table is one sharded fact: its shard level, per-shard state, the
// coordinator's own full copy (schema source and fallback scanner),
// and the shard-level member ownership map used for routing.
type table struct {
	fact   string
	local  *storage.FactTable
	level  mdm.LevelRef
	shards []*shardState
	// owned[s] lists the shard-level member ids hashed to shard s,
	// sorted; it doubles as the fallback predicate for shard s.
	owned [][]int32
	// fallback enables serving a failed shard from the local copy.
	fallback bool
}

// Coordinator scatter-gathers scans over sharded facts.
type Coordinator struct {
	eng  *engine.Engine
	cfg  Config
	next engine.ScanBatcher // fallback for non-sharded facts

	mu     sync.RWMutex
	tables map[string]*table

	fanouts     atomic.Int64
	partials    atomic.Int64
	unavailable atomic.Int64
}

// NewCoordinator wraps the session engine. The engine must hold a full
// local copy of every fact that will be sharded (it is the schema
// source, the view/materialization substrate, and the local fallback).
func NewCoordinator(eng *engine.Engine, cfg Config) *Coordinator {
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = DefaultShardTimeout
	}
	return &Coordinator{eng: eng, cfg: cfg, tables: make(map[string]*table)}
}

// SetFallback chains the batcher that handles scans of non-sharded
// facts (typically the shared-scan admission batcher). Must be set
// before queries start.
func (c *Coordinator) SetFallback(b engine.ScanBatcher) { c.next = b }

// AddTable declares fact as sharded across the given replica chains
// (chains[s] is shard s's primary followed by its replicas). localFallback
// lets a failed shard be served from the engine's local copy via a
// synthesized ownership predicate — bit-identical to the shard's own
// partial, since both scan exactly the rows hashed to that shard.
func (c *Coordinator) AddTable(fact string, level mdm.LevelRef, chains [][]ShardClient, localFallback bool) error {
	f, ok := c.eng.Fact(fact)
	if !ok {
		return fmt.Errorf("dist: fact %s not registered with the coordinator engine", fact)
	}
	if len(chains) == 0 {
		return fmt.Errorf("dist: fact %s: no shards", fact)
	}
	if level.Hier < 0 || level.Hier >= len(f.Schema.Hiers) ||
		level.Level < 0 || level.Level >= f.Schema.Hiers[level.Hier].Depth() {
		return fmt.Errorf("dist: fact %s: shard level out of range", fact)
	}
	t := &table{
		fact:     fact,
		local:    f,
		level:    level,
		owned:    ownedMembers(f.Schema, level, len(chains)),
		fallback: localFallback,
	}
	for _, chain := range chains {
		if len(chain) == 0 {
			return fmt.Errorf("dist: fact %s: empty replica chain", fact)
		}
		ss := &shardState{clients: chain}
		ss.expect.Store(unseenGen)
		t.shards = append(t.shards, ss)
	}
	c.mu.Lock()
	c.tables[fact] = t
	c.mu.Unlock()
	return nil
}

func (c *Coordinator) tableFor(fact string) *table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[fact]
}

// Scan implements engine.ScanBatcher: sharded facts scatter-gather,
// everything else falls through.
func (c *Coordinator) Scan(ctx context.Context, q engine.Query, ops []mdm.AggOp, names []string) (*cube.Cube, error) {
	t := c.tableFor(q.Fact)
	if t == nil {
		if c.next != nil {
			return c.next.Scan(ctx, q, ops, names)
		}
		return c.eng.ScanWithOps(q, ops, names)
	}
	return c.scatterGather(ctx, t, q, ops, names)
}

// shardResult is one shard's partial: its decoded table, the shard
// generation (remote scans only), and how it was served.
type shardResult struct {
	part  *partialTable
	gen   uint64
	local bool // served by local fallback; gen is not a shard generation
	err   error
}

func (c *Coordinator) scatterGather(ctx context.Context, t *table, q engine.Query, ops []mdm.AggOp, names []string) (*cube.Cube, error) {
	plan := decompose(q.Measures, ops)
	req := &ScanRequest{
		Fact:     q.Fact,
		Group:    []mdm.LevelRef(q.Group),
		Measures: plan.meas,
		Names:    plan.names,
	}
	for _, op := range plan.ops {
		req.Ops = append(req.Ops, int(op))
	}
	for _, p := range q.Preds {
		req.Preds = append(req.Preds, WirePred{Hier: p.Level.Hier, Level: p.Level.Level, Members: p.Members})
	}

	needed := t.route(q.Preds)
	c.fanouts.Add(1)
	mDistFanouts.Inc()
	mDistShardsPruned.Add(int64(len(t.shards) - len(needed)))

	start := time.Now()
	results := make([]shardResult, len(needed))
	var wg sync.WaitGroup
	for i, s := range needed {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			results[i] = c.scanShard(ctx, t, s, req, plan, q)
		}(i, s)
	}
	wg.Wait()
	hDistFanout.Observe(time.Since(start).Seconds())

	var failed []int
	var lastErr error
	parts := make([]*partialTable, 0, len(results))
	for i, r := range results {
		if r.err != nil {
			failed = append(failed, needed[i])
			lastErr = r.err
			continue
		}
		if !r.local {
			c.reconcile(t, needed[i], r.gen)
		}
		parts = append(parts, r.part)
	}
	if len(failed) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if c.cfg.Policy == PolicyFail {
			c.unavailable.Add(1)
			mDistUnavailable.Inc()
			return nil, &Unavailable{Fact: q.Fact, Shards: failed, Err: lastErr}
		}
		// PolicyPartial: merge what arrived, annotate the request, and
		// bump the local fact's version so the degraded result can
		// never be served from the query cache as if it were complete.
		c.partials.Add(1)
		mDistPartialsServed.Inc()
		if n := noteFrom(ctx); n != nil {
			n.record(q.Fact, failed)
		}
		t.local.AdvanceVersion(1)
	}

	m0 := time.Now()
	merged := plan.mergeTree(parts)
	out, err := plan.finalize(t.local.Schema, q.Group, names, merged)
	hDistMerge.Observe(time.Since(m0).Seconds())
	return out, err
}

// scanShard tries shard s's replica chain under per-attempt deadlines,
// then the local fallback. Each attempt runs in its own goroutine so an
// unresponsive replica is abandoned at the deadline rather than waited
// on.
func (c *Coordinator) scanShard(ctx context.Context, t *table, s int, req *ScanRequest, plan *partialPlan, q engine.Query) shardResult {
	ss := t.shards[s]
	var lastErr error
	for attempt, cl := range ss.clients {
		if err := ctx.Err(); err != nil {
			return shardResult{err: err}
		}
		if attempt > 0 {
			ss.redispatches.Add(1)
			mDistRedispatches.Inc()
		}
		ss.scans.Add(1)
		mDistShardScans.Inc()
		actx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
		type attemptResult struct {
			gen  uint64
			part *cube.Cube
			err  error
		}
		ch := make(chan attemptResult, 1)
		a0 := time.Now()
		go func(cl ShardClient) {
			gen, part, err := cl.Scan(actx, req, t.local.Schema)
			ch <- attemptResult{gen: gen, part: part, err: err}
		}(cl)
		var ar attemptResult
		select {
		case ar = <-ch:
		case <-actx.Done():
			ar.err = actx.Err()
		}
		cancel()
		if ar.err == nil {
			hDistShard.Observe(time.Since(a0).Seconds())
			return shardResult{part: tableFrom(ar.part), gen: ar.gen}
		}
		ss.errors.Add(1)
		mDistShardErrors.Inc()
		lastErr = ar.err
	}
	if t.fallback {
		if err := ctx.Err(); err != nil {
			return shardResult{err: err}
		}
		ss.fallbacks.Add(1)
		mDistLocalFallbacks.Inc()
		lq := q
		lq.Measures = plan.meas // ops[j] aggregates fact column Measures[j]
		lq.Preds = append(append([]engine.Predicate(nil), q.Preds...),
			engine.Predicate{Level: t.level, Members: t.owned[s]})
		part, err := c.eng.ScanWithOps(lq, plan.ops, plan.names)
		if err == nil {
			return shardResult{part: tableFrom(part), local: true}
		}
		lastErr = err
	}
	return shardResult{err: lastErr}
}

// route returns the shard indices a query with the given predicates
// must touch, in ascending order. Predicates on hierarchies other than
// the shard hierarchy cannot prune shards; predicates on the shard
// hierarchy narrow the compatible shard-level members (exactly at the
// shard level, by rolling predicate members up from finer levels, or by
// keeping shard-level members whose roll-up survives a coarser
// predicate), and only the shards owning a compatible member are
// scanned. All predicates still travel with the request, so worker zone
// maps prune further within each shard.
func (t *table) route(preds []engine.Predicate) []int {
	hier := t.local.Schema.Hiers[t.level.Hier]
	var compat map[int32]bool // nil = unconstrained
	for _, p := range preds {
		if p.Level.Hier != t.level.Hier {
			continue
		}
		set := make(map[int32]bool)
		switch {
		case p.Level.Level == t.level.Level:
			for _, m := range p.Members {
				set[m] = true
			}
		case p.Level.Level > t.level.Level:
			// Coarser predicate: keep shard-level members rolling up
			// into it.
			accept := make(map[int32]bool, len(p.Members))
			for _, m := range p.Members {
				accept[m] = true
			}
			n := int32(hier.Dict(t.level.Level).Len())
			for id := int32(0); id < n; id++ {
				if accept[hier.Rollup(id, t.level.Level, p.Level.Level)] {
					set[id] = true
				}
			}
		default:
			// Finer predicate: its members roll up to shard-level ones.
			for _, m := range p.Members {
				set[hier.Rollup(m, p.Level.Level, t.level.Level)] = true
			}
		}
		if compat == nil {
			compat = set
			continue
		}
		for id := range compat {
			if !set[id] {
				delete(compat, id)
			}
		}
	}
	if compat == nil {
		all := make([]int, len(t.shards))
		for i := range all {
			all[i] = i
		}
		return all
	}
	n := len(t.shards)
	hit := make([]bool, n)
	for id := range compat {
		hit[shardOf(id, n)] = true
	}
	var out []int
	for s, h := range hit {
		if h {
			out = append(out, s)
		}
	}
	return out
}

// reconcile folds a shard's reported generation into the coordinator's
// expectation: growth beyond what the coordinator has already accounted
// for (appends that reached the shard directly) advances the local
// fact's version by the difference, so cached results and views built
// before the append are invalidated exactly once.
func (c *Coordinator) reconcile(t *table, s int, gen uint64) {
	ss := t.shards[s]
	for {
		old := ss.expect.Load()
		if old == unseenGen {
			if ss.expect.CompareAndSwap(old, gen) {
				return
			}
			continue
		}
		if gen <= old {
			return
		}
		if ss.expect.CompareAndSwap(old, gen) {
			t.local.AdvanceVersion(gen - old)
			return
		}
	}
}

// Append routes one row through the coordinator: the owning shard's
// primary gets it first (replicas next on error), then the local copy,
// and the shard's generation expectation absorbs the reported version
// so the next merge does not double-count the append. Non-sharded
// facts append locally.
func (c *Coordinator) Append(ctx context.Context, fact string, keys []int32, vals []float64) error {
	t := c.tableFor(fact)
	if t == nil {
		f, ok := c.eng.Fact(fact)
		if !ok {
			return fmt.Errorf("dist: fact %s not registered", fact)
		}
		return f.Append(keys, vals)
	}
	s := shardOf(rollKey(t.local.Schema, t.level, keys[t.level.Hier]), len(t.shards))
	ss := t.shards[s]
	var gen uint64
	var err error
	for _, cl := range ss.clients {
		gen, err = cl.Append(ctx, fact, keys, vals)
		if err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("dist: append to shard %d of %s failed: %w", s, fact, err)
	}
	mDistAppends.Inc()
	// The local copy's own Append bumps the session generation; absorb
	// the shard's new generation so reconcile won't bump again.
	for {
		old := ss.expect.Load()
		if old != unseenGen && gen <= old {
			break
		}
		if ss.expect.CompareAndSwap(old, gen) {
			break
		}
	}
	return t.local.Append(keys, vals)
}

// ShardStats is the /stats snapshot of one shard of one fact.
type ShardStats struct {
	Shard        int      `json:"shard"`
	Targets      []string `json:"targets"`
	Generation   uint64   `json:"generation"` // last reconciled; 0 if unseen
	Scans        int64    `json:"scans"`
	Errors       int64    `json:"errors"`
	Redispatches int64    `json:"redispatches"`
	Fallbacks    int64    `json:"fallbacks"`
}

// TableStats describes one sharded fact.
type TableStats struct {
	Fact   string       `json:"fact"`
	Level  string       `json:"shard_level"`
	Shards []ShardStats `json:"shards"`
}

// Stats is the coordinator's /stats snapshot.
type Stats struct {
	Policy      string       `json:"policy"`
	Fanouts     int64        `json:"fanouts"`
	Partials    int64        `json:"partials_served"`
	Unavailable int64        `json:"unavailable"`
	Tables      []TableStats `json:"tables"`
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Policy:      c.cfg.Policy.String(),
		Fanouts:     c.fanouts.Load(),
		Partials:    c.partials.Load(),
		Unavailable: c.unavailable.Load(),
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for name := range c.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.tables[name]
		ts := TableStats{Fact: name, Level: t.local.Schema.LevelName(t.level)}
		for s, ss := range t.shards {
			gen := ss.expect.Load()
			if gen == unseenGen {
				gen = 0
			}
			targets := make([]string, len(ss.clients))
			for i, cl := range ss.clients {
				targets[i] = cl.Target()
			}
			ts.Shards = append(ts.Shards, ShardStats{
				Shard:        s,
				Targets:      targets,
				Generation:   gen,
				Scans:        ss.scans.Load(),
				Errors:       ss.errors.Load(),
				Redispatches: ss.redispatches.Load(),
				Fallbacks:    ss.fallbacks.Load(),
			})
		}
		st.Tables = append(st.Tables, ts)
	}
	return st
}

var _ engine.ScanBatcher = (*Coordinator)(nil)
