// Package dist implements distributed scatter-gather execution over
// hash-sharded fact tables. A fact is partitioned by the hash of each
// row's member at a chosen shard level; every shard's slice lives in a
// worker — either an in-process *Worker (tests, benchmarks, single-box
// deployments) or a separate `assessd -worker` process reached over a
// compact partial-aggregate RPC (see http.go). A Coordinator implements
// engine.ScanBatcher: it plans each fact scan once, fans per-shard
// requests out concurrently (routing around shards the predicates prove
// empty), and merges the distributive/algebraic partials in a log-depth
// merge tree, shipping AVG as (sum,count) exactly like the lattice
// navigator does for views.
//
// The decomposition keeps results bit-exact for the measures the oracle
// generates: SUM/MIN/MAX/COUNT are distributive, AVG is algebraic via
// (sum,count), and integer-valued partials make the cross-shard merge
// order irrelevant. Failure handling — per-shard deadlines, re-dispatch
// to replicas, local fallback, and a configurable partial-result policy
// — lives in coordinator.go; docs/distribution.md documents the wire
// format and the coherence contract.
package dist

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/assess-olap/assess/internal/cube"
	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/mdm"
)

// Policy selects what the coordinator does when a shard cannot be
// served by any replica or a local fallback.
type Policy int

const (
	// PolicyFail rejects the query with an *Unavailable error (the
	// server maps it to HTTP 503).
	PolicyFail Policy = iota
	// PolicyPartial merges the partials that did arrive and annotates
	// the response as partial via the context's PartialNote.
	PolicyPartial
)

// ParsePolicy maps the -dist-policy flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fail":
		return PolicyFail, nil
	case "partial":
		return PolicyPartial, nil
	}
	return PolicyFail, fmt.Errorf("dist: unknown policy %q (want fail or partial)", s)
}

func (p Policy) String() string {
	if p == PolicyPartial {
		return "partial"
	}
	return "fail"
}

// Unavailable reports that one or more shards of a fact could not be
// served and the coordinator's policy is PolicyFail. The server maps it
// to HTTP 503 Service Unavailable.
type Unavailable struct {
	Fact   string
	Shards []int // shard indices that failed
	Err    error // representative cause from the last failed attempt
}

func (u *Unavailable) Error() string {
	return fmt.Sprintf("dist: fact %s unavailable: shard(s) %v failed: %v", u.Fact, u.Shards, u.Err)
}

func (u *Unavailable) Unwrap() error { return u.Err }

// PartialNote collects, per request, whether any scan under it was
// served partially and which shards were degraded. Server handlers
// install one with TrackPartial before executing a statement and
// annotate the response from it.
type PartialNote struct {
	mu      sync.Mutex
	partial bool
	shards  []string // "FACT/3" entries, deduplicated
}

type noteKey struct{}

// TrackPartial derives a context carrying a fresh PartialNote. Every
// coordinator scan under the returned context records degraded shards
// into the note instead of failing (given PolicyPartial).
func TrackPartial(ctx context.Context) (context.Context, *PartialNote) {
	n := &PartialNote{}
	return context.WithValue(ctx, noteKey{}, n), n
}

func noteFrom(ctx context.Context) *PartialNote {
	n, _ := ctx.Value(noteKey{}).(*PartialNote)
	return n
}

func (n *PartialNote) record(fact string, shards []int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partial = true
	for _, s := range shards {
		tag := fmt.Sprintf("%s/%d", fact, s)
		found := false
		for _, have := range n.shards {
			if have == tag {
				found = true
				break
			}
		}
		if !found {
			n.shards = append(n.shards, tag)
		}
	}
	sort.Strings(n.shards)
}

// Partial reports whether any scan under the tracked context was
// degraded.
func (n *PartialNote) Partial() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partial
}

// DegradedShards lists the degraded "FACT/shard" tags, sorted.
func (n *PartialNote) DegradedShards() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.shards...)
}

// partialPlan decomposes the requested aggregates into distributive
// partials the shards compute and the coordinator merges: SUM, MIN,
// MAX, COUNT map to themselves (merged with sum, min, max, sum), and
// the algebraic AVG ships as a (sum,count) pair finalized to sum/count
// after the merge — the same decomposition the lattice navigator uses
// when answering from coarser views.
type partialPlan struct {
	ops   []mdm.AggOp // shard-side operator per partial column
	meas  []int       // fact measure index per partial column
	names []string    // partial column names ("p0", "p1", ...)
	merge []mdm.AggOp // cross-shard combine per partial (Sum/Min/Max)
	// out[j] holds the partial column indices backing requested
	// measure j: {sum, count} for AVG, {col, -1} for everything else.
	out [][2]int
	// finalOps[j] is the originally requested operator for measure j.
	finalOps []mdm.AggOp
}

func decompose(measures []int, ops []mdm.AggOp) *partialPlan {
	p := &partialPlan{
		out:      make([][2]int, len(ops)),
		finalOps: append([]mdm.AggOp(nil), ops...),
	}
	add := func(op mdm.AggOp, meas int, merge mdm.AggOp) int {
		idx := len(p.ops)
		p.ops = append(p.ops, op)
		p.meas = append(p.meas, meas)
		p.names = append(p.names, fmt.Sprintf("p%d", idx))
		p.merge = append(p.merge, merge)
		return idx
	}
	for j, op := range ops {
		m := measures[j]
		switch op {
		case mdm.AggAvg:
			p.out[j] = [2]int{add(mdm.AggSum, m, mdm.AggSum), add(mdm.AggCount, m, mdm.AggSum)}
		case mdm.AggCount:
			p.out[j] = [2]int{add(mdm.AggCount, m, mdm.AggSum), -1}
		case mdm.AggMin:
			p.out[j] = [2]int{add(mdm.AggMin, m, mdm.AggMin), -1}
		case mdm.AggMax:
			p.out[j] = [2]int{add(mdm.AggMax, m, mdm.AggMax), -1}
		default:
			p.out[j] = [2]int{add(mdm.AggSum, m, mdm.AggSum), -1}
		}
	}
	return p
}

// WirePred is one scan predicate on the wire: accepted member ids at
// one level of one hierarchy.
type WirePred struct {
	Hier    int     `json:"hier"`
	Level   int     `json:"level"`
	Members []int32 `json:"members"`
}

// ScanRequest is the partial-aggregate RPC request: a group-by set,
// predicates, and the partial columns to compute. Hierarchies, levels
// and members travel as the coordinator's integer ids — every node
// builds the identical schema (same dataset, same dictionaries), so ids
// agree by construction; docs/distribution.md states this contract.
type ScanRequest struct {
	Fact     string         `json:"fact"`
	Group    []mdm.LevelRef `json:"group"`
	Preds    []WirePred     `json:"preds,omitempty"`
	Measures []int          `json:"measures"`
	Ops      []int          `json:"ops"`
	Names    []string       `json:"names"`
}

func (r *ScanRequest) query() (engine.Query, []mdm.AggOp) {
	q := engine.Query{
		Fact:     r.Fact,
		Group:    mdm.GroupBy(r.Group),
		Measures: r.Measures,
	}
	for _, p := range r.Preds {
		q.Preds = append(q.Preds, engine.Predicate{
			Level:   mdm.LevelRef{Hier: p.Hier, Level: p.Level},
			Members: p.Members,
		})
	}
	ops := make([]mdm.AggOp, len(r.Ops))
	for i, o := range r.Ops {
		ops[i] = mdm.AggOp(o)
	}
	return q, ops
}

// respMagic versions the binary partial-aggregate response format.
const respMagic = "ADP1"

// EncodeResponse serializes a worker's partial cube: magic, the shard
// fact's generation, and the cells as little-endian int32 coordinates
// followed by float64 bit patterns per partial column — the same
// row-wire idiom as the engine/client cursor format.
func EncodeResponse(gen uint64, c *cube.Cube) []byte {
	ncoord := len(c.Group)
	ncols := len(c.Cols)
	nrows := c.Len()
	buf := make([]byte, 0, 4+8+12+nrows*(4*ncoord+8*ncols))
	buf = append(buf, respMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ncoord))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ncols))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nrows))
	for i := 0; i < nrows; i++ {
		for _, id := range c.Coords[i] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		}
		for j := 0; j < ncols; j++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Cols[j][i]))
		}
	}
	return buf
}

// DecodeResponse parses an encoded partial response against the
// coordinator's schema and the request's group-by and partial names.
func DecodeResponse(s *mdm.Schema, g mdm.GroupBy, names []string, buf []byte) (uint64, *cube.Cube, error) {
	if len(buf) < 4+8+12 || string(buf[:4]) != respMagic {
		return 0, nil, fmt.Errorf("dist: bad response header")
	}
	gen := binary.LittleEndian.Uint64(buf[4:])
	ncoord := int(binary.LittleEndian.Uint32(buf[12:]))
	ncols := int(binary.LittleEndian.Uint32(buf[16:]))
	nrows := int(binary.LittleEndian.Uint32(buf[20:]))
	if ncoord != len(g) || ncols != len(names) {
		return 0, nil, fmt.Errorf("dist: response shape %dx%d, want %dx%d", ncoord, ncols, len(g), len(names))
	}
	rowBytes := 4*ncoord + 8*ncols
	body := buf[24:]
	if len(body) != nrows*rowBytes {
		return 0, nil, fmt.Errorf("dist: response body %d bytes, want %d", len(body), nrows*rowBytes)
	}
	c := cube.New(s, g, names...)
	vals := make([]float64, ncols)
	for i := 0; i < nrows; i++ {
		off := i * rowBytes
		coord := make(mdm.Coordinate, ncoord)
		for k := 0; k < ncoord; k++ {
			coord[k] = int32(binary.LittleEndian.Uint32(body[off+4*k:]))
		}
		off += 4 * ncoord
		for j := 0; j < ncols; j++ {
			vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8*j:]))
		}
		if err := c.AddCell(coord, vals); err != nil {
			return 0, nil, err
		}
	}
	return gen, c, nil
}
