// Worker: the shard-side half of the partial-aggregate RPC. A worker
// wraps its own engine holding this shard's slice of each sharded fact
// and answers ScanRequests with partial cubes plus the shard fact's
// generation, which the coordinator reconciles at merge time.
package dist

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/assess-olap/assess/internal/cube"
	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/storage"
)

// Worker serves partial-aggregate scans over its shard of each fact.
type Worker struct {
	eng     *engine.Engine
	scans   atomic.Int64
	appends atomic.Int64
}

// NewWorker returns a worker with an empty engine; register shard facts
// with Register, tune scan knobs through Engine.
func NewWorker() *Worker {
	return &Worker{eng: engine.New()}
}

// Engine exposes the worker's engine so callers can set scan knobs
// (parallelism, dense budget, morsel size) on the shard side.
func (w *Worker) Engine() *engine.Engine { return w.eng }

// Register adds a shard fact under the coordinator-visible fact name.
func (w *Worker) Register(name string, f *storage.FactTable) error {
	return w.eng.Register(name, f)
}

// Scan evaluates one partial-aggregate request against the shard and
// returns the shard fact's generation alongside the partial cube. The
// scan itself is not interruptible (the engine's solo path carries no
// context); the coordinator's per-shard deadline abandons stragglers
// instead. The worker's zone maps still see the request's predicates,
// so segment-backed shards prune exactly like a local scan would.
func (w *Worker) Scan(_ context.Context, req *ScanRequest) (uint64, *cube.Cube, error) {
	f, ok := w.eng.Fact(req.Fact)
	if !ok {
		return 0, nil, fmt.Errorf("dist: worker has no shard of fact %s", req.Fact)
	}
	q, ops := req.query()
	c, err := w.eng.ScanWithOps(q, ops, req.Names)
	if err != nil {
		return 0, nil, err
	}
	w.scans.Add(1)
	return f.Version(), c, nil
}

// Append appends one row to the worker's shard of the fact and returns
// the new shard generation. The coordinator routes each append to the
// owning shard; appending here directly is allowed but see the
// coherence contract in docs/distribution.md.
func (w *Worker) Append(fact string, keys []int32, vals []float64) (uint64, error) {
	f, ok := w.eng.Fact(fact)
	if !ok {
		return 0, fmt.Errorf("dist: worker has no shard of fact %s", fact)
	}
	if err := f.Append(keys, vals); err != nil {
		return 0, err
	}
	w.appends.Add(1)
	return f.Version(), nil
}

// WorkerStats is the /dist/stats snapshot of one worker.
type WorkerStats struct {
	Scans   int64             `json:"scans"`
	Appends int64             `json:"appends"`
	Facts   []WorkerFactStats `json:"facts"`
}

// WorkerFactStats describes one shard fact held by a worker.
type WorkerFactStats struct {
	Fact       string `json:"fact"`
	Rows       int    `json:"rows"`
	Generation uint64 `json:"generation"`
}

// Stats snapshots the worker's counters and shard facts.
func (w *Worker) Stats() WorkerStats {
	st := WorkerStats{Scans: w.scans.Load(), Appends: w.appends.Load()}
	for _, name := range w.eng.Facts() {
		f, ok := w.eng.Fact(name)
		if !ok {
			continue
		}
		st.Facts = append(st.Facts, WorkerFactStats{Fact: name, Rows: f.Rows(), Generation: f.Version()})
	}
	return st
}
