package oracle

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/assess-olap/assess/internal/colstore"
	"github.com/assess-olap/assess/internal/core"
	"github.com/assess-olap/assess/internal/dist"
	"github.com/assess-olap/assess/internal/exec"
	"github.com/assess-olap/assess/internal/mdm"
	"github.com/assess-olap/assess/internal/obsv"
	"github.com/assess-olap/assess/internal/parser"
	"github.com/assess-olap/assess/internal/persist"
	"github.com/assess-olap/assess/internal/plan"
	"github.com/assess-olap/assess/internal/qcache"
	"github.com/assess-olap/assess/internal/storage"
)

// Discrepancy is one observed divergence between an execution axis and
// the reference evaluation, with everything needed to reproduce it.
type Discrepancy struct {
	Seed   int64
	Stmt   string
	Axis   string // e.g. "par+views/JOP", "cache/POP warm"
	Detail string
}

// String renders the discrepancy with a one-line repro command.
func (d Discrepancy) String() string {
	return fmt.Sprintf("seed %d, axis %s: %s\n  stmt:  %s\n  repro: ORACLE_SEED=%d go test ./internal/oracle -run TestDifferential",
		d.Seed, d.Axis, d.Detail, d.Stmt, d.Seed)
}

// Report summarizes one differential run.
type Report struct {
	Seed          int64
	Statements    int
	Comparisons   int // result sets checked against the reference
	Discrepancies []Discrepancy
}

// axes are the session configurations the harness cross-checks. The
// reference is NP on the first (serial hash kernel, no views, no cache);
// every other axis must reproduce it bit-for-bit on coordinates and
// labels and ULP-exactly on numeric columns, for every feasible
// strategy. The kernel dimension (dense vs hash × serial vs
// morsel-parallel) pins the vectorized dense-key kernels of
// internal/engine against the hash path: the generator emits
// integer-valued measures, so the two must agree bit-exactly. The views
// dimension has two modes: "exact" materializes the statements' own
// group-by sets (views served verbatim), "lattice" materializes
// strictly finer covering views (Case.LatticeViews), forcing the
// aggregate navigator to re-aggregate view cells through the roll-up
// lattice — serially on the hash kernels (lattice) and morsel-parallel
// on the dense kernels (par+lattice).
// The storage dimension (segment axes) rebuilds both cubes as
// segment-backed tables in a temp directory with segments far smaller
// than the fact, so block-at-a-time scans, segment decode, and zone-map
// pruning must reproduce the resident reference bit-for-bit. The segment
// axes pin the eager decode path (colstore.Options.Eager); the lazy axes
// run the same stores in the default late-materialized mode, so
// code-space predicate evaluation, selection bitmaps, segment skips, and
// gather decode must also reproduce the reference bit-for-bit — lazy+par
// layers the morsel-parallel dense kernels on top, consuming backend
// bitmaps across worker-stolen blocks.
// The batched axes route every fact scan through the shared-scan
// batcher (internal/sched): the per-statement pass exercises the
// single-query delegation, and a second concurrent sweep (see Run)
// re-executes every (statement, strategy) pair at once so arrivals
// genuinely coalesce into multi-query shared scans — both must
// reproduce the reference bit-for-bit.
// The sharded axes hash-split both cubes across an in-process cluster
// (1, 2, 3, or 5 shards by seed) and scatter-gather every scan through
// internal/dist: partial aggregation on each shard, wire encode/decode,
// and the log-depth merge tree must reproduce the unsharded reference
// bit-for-bit — the generator's integer-valued measures make every
// shard association order exact. sharded+par additionally runs each
// worker's scans morsel-parallel on the dense kernels.
var axes = []struct {
	name     string
	parallel bool
	views    string // "", "exact", or "lattice"
	cache    bool
	dense    bool
	segment  bool
	lazy     bool // segment store in late-materialized (default) mode
	batched  bool
	sharded  bool
}{
	{"base", false, "", false, false, false, false, false, false},
	{"dense", false, "", false, true, false, false, false, false},
	{"par", true, "", false, false, false, false, false, false},
	{"dense+par", true, "", false, true, false, false, false, false},
	{"views", false, "exact", false, true, false, false, false, false},
	{"par+views", true, "exact", false, true, false, false, false, false},
	{"lattice", false, "lattice", false, false, false, false, false, false},
	{"par+lattice", true, "lattice", false, true, false, false, false, false},
	{"cache", false, "", true, true, false, false, false, false},
	{"cache+par+views", true, "exact", true, true, false, false, false, false},
	{"segment", false, "", false, false, true, false, false, false},
	{"segment+par", true, "", false, true, true, false, false, false},
	{"lazy", false, "", false, false, true, true, false, false},
	{"lazy+par", true, "", false, true, true, true, false, false},
	{"batched", false, "", false, true, false, false, true, false},
	{"batched+segment", true, "", false, false, true, false, true, false},
	{"sharded", false, "", false, false, false, false, false, true},
	{"sharded+par", true, "", false, true, false, false, false, true},
}

// oracleShardCounts rotates the sharded axes' cluster size by seed:
// a 1-shard cluster pins the degenerate wire round trip, the larger
// counts exercise genuine cross-shard merges. Over a wide sweep every
// count is hit many times.
var oracleShardCounts = []int{1, 2, 3, 5}

// shardCountFor picks the sharded axes' cluster size for a seed.
func shardCountFor(seed int64) int {
	return oracleShardCounts[int(seed)%len(oracleShardCounts)]
}

// oracleWorkers is the scan parallelism of the parallel axes,
// oracleMinParRows the per-worker row floor, and oracleMorselRows the
// morsel size: low enough that the generated facts (hundreds to a few
// thousand rows) genuinely split into more morsels than workers, so
// work-stealing and the partial-state merges are on the tested path.
const (
	oracleWorkers    = 4
	oracleMinParRows = 97
	oracleMorselRows = 53
)

// oracleDenseBudget forces the dense kernels onto every generated
// group-by set (their key spaces stay far smaller than this) on the
// dense axes; the hash axes disable dense with SetDenseKeyBudget(0).
const oracleDenseBudget = 1 << 22

// oracleSegmentRows keeps segment-axis segments far smaller than the
// generated facts (hundreds to a few thousand rows), so every sweep
// crosses many segment boundaries.
const oracleSegmentRows = 256

// oracleBatchWindow is the shared-scan batching window of the batched
// axes: short enough that the serial per-statement pass stays fast,
// long enough that the concurrent sweep's arrivals coalesce.
const oracleBatchWindow = 200 * time.Microsecond

// traceEnabled turns on span collection for every oracle execution
// (ORACLE_TRACE=1): each statement runs under a live trace, proving the
// instrumentation path produces identical results to the plain path,
// and every finished trace is checked for well-formedness.
var traceEnabled = os.Getenv("ORACLE_TRACE") == "1"

// execTracked runs a statement, under a trace when ORACLE_TRACE=1, and
// returns the finished root span (nil when tracing is off) alongside
// the usual results.
func execTracked(s *core.Session, stmt string, strat plan.Strategy) (*exec.Result, core.CacheState, *obsv.Span, error) {
	if !traceEnabled {
		res, state, err := s.ExecWithTracked(stmt, strat)
		return res, state, nil, err
	}
	ctx, tr := obsv.NewTrace(context.Background(), "oracle")
	res, state, err := s.ExecWithTrackedContext(ctx, stmt, strat)
	return res, state, tr.Finish(), err
}

// checkTrace validates a finished span tree: positive durations, named
// spans, and children fully contained in the statement's span set.
func checkTrace(root *obsv.Span) string {
	if root == nil {
		return "trace missing"
	}
	var walk func(s *obsv.Span) string
	walk = func(s *obsv.Span) string {
		if s.Name == "" {
			return "unnamed span"
		}
		if s.Duration < 0 {
			return fmt.Sprintf("span %s: negative duration %v", s.Name, s.Duration)
		}
		for _, c := range s.Children {
			if msg := walk(c); msg != "" {
				return msg
			}
		}
		return ""
	}
	return walk(root)
}

// segmentCopy rebuilds a resident fact table as a segment-backed one in
// a fresh temp directory. Background compaction is disabled so the
// segment layout is deterministic; eager pins the pre-late-
// materialization decode path (false leaves the default lazy mode on).
// The returned cleanup closes the store and removes the directory.
func segmentCopy(f *storage.FactTable, eager bool) (*storage.FactTable, func(), error) {
	dir, err := os.MkdirTemp("", "oracle-seg-")
	if err != nil {
		return nil, nil, err
	}
	opts := colstore.Options{SegmentRows: oracleSegmentRows, AutoCompactRows: -1, Eager: eager}
	if err := persist.SaveCubeDir(dir, f, opts); err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	seg, st, err := persist.OpenCubeDir(dir, opts)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	return seg, func() { st.Close(); os.RemoveAll(dir) }, nil
}

// shardSession splits both cubes across an in-process cluster of n
// workers (hash-sharded on the first hierarchy's base level) and
// installs a scatter-gather coordinator on s. The worker engines get
// the same kernel knobs as the coordinator session so the sharded axes
// test the intended kernel dimension shard-side too.
func shardSession(s *core.Session, fact, ext *storage.FactTable, n int, parallel, dense bool) error {
	level := mdm.LevelRef{Hier: 0, Level: 0}
	lc := dist.NewLocalCluster(n)
	if err := lc.AddFact(TargetCube, fact, level); err != nil {
		return err
	}
	if err := lc.AddFact(ExtCube, ext, level); err != nil {
		return err
	}
	for _, w := range lc.Workers {
		we := w.Engine()
		if dense {
			we.SetDenseKeyBudget(oracleDenseBudget)
		} else {
			we.SetDenseKeyBudget(0)
		}
		if parallel {
			we.SetParallelism(oracleWorkers)
			we.SetParallelMinRows(oracleMinParRows)
			we.SetMorselSize(oracleMorselRows)
		}
	}
	coord := dist.NewCoordinator(s.Engine, dist.Config{})
	if err := coord.AddTable(TargetCube, level, lc.Clients(), true); err != nil {
		return err
	}
	if err := coord.AddTable(ExtCube, level, lc.Clients(), true); err != nil {
		return err
	}
	s.EnableDistributed(coord)
	return nil
}

func buildSession(c *Case, parallel bool, views string, cache, dense, segment, lazy, batched bool, shards int) (*core.Session, func(), error) {
	cleanup := func() {}
	fact, ext := c.Fact, c.ExtFact
	if segment {
		var cf, ce func()
		var err error
		if fact, cf, err = segmentCopy(c.Fact, !lazy); err != nil {
			return nil, cleanup, err
		}
		if ext, ce, err = segmentCopy(c.ExtFact, !lazy); err != nil {
			cf()
			return nil, cleanup, err
		}
		cleanup = func() { cf(); ce() }
		// The copies decode their hierarchies independently; restore the
		// pointer sharing external-benchmark joins require.
		persist.ReconcileSchemas(fact.Schema, ext.Schema)
	}
	s := core.NewSession()
	if err := s.RegisterCube(TargetCube, fact); err != nil {
		return nil, cleanup, err
	}
	if err := s.RegisterCube(ExtCube, ext); err != nil {
		return nil, cleanup, err
	}
	if dense {
		s.Engine.SetDenseKeyBudget(oracleDenseBudget)
	} else {
		s.Engine.SetDenseKeyBudget(0)
	}
	if parallel {
		s.Engine.SetParallelism(oracleWorkers)
		s.Engine.SetParallelMinRows(oracleMinParRows)
		s.Engine.SetMorselSize(oracleMorselRows)
	}
	if views != "" {
		// The hierarchies are shared, so every view level set applies to
		// the external cube too, putting the view path under the benchmark
		// queries as well as the target queries.
		sets := c.Views
		if views == "lattice" {
			sets = c.LatticeViews
		}
		for _, v := range sets {
			if err := s.Materialize(TargetCube, v...); err != nil {
				return nil, cleanup, err
			}
			if err := s.Materialize(ExtCube, v...); err != nil {
				return nil, cleanup, err
			}
		}
	}
	if cache {
		s.EnableCache(0)
	}
	if batched {
		s.EnableSharedScans(oracleBatchWindow)
	}
	if shards > 0 {
		if err := shardSession(s, fact, ext, shards, parallel, dense); err != nil {
			return nil, cleanup, err
		}
	}
	return s, cleanup, nil
}

// Run generates the case for a seed and cross-checks every statement
// along every axis. Generator-level failures (a statement that fails to
// parse, render round-trip, or bind) are reported as discrepancies too:
// the generator is constrained to emit well-typed statements, so any
// rejection is a bug on one side of that contract.
func Run(seed int64) *Report {
	c := Generate(seed)
	rep := &Report{Seed: seed, Statements: len(c.Statements)}
	add := func(stmt, axis, detail string) {
		rep.Discrepancies = append(rep.Discrepancies, Discrepancy{
			Seed: seed, Stmt: stmt, Axis: axis, Detail: detail,
		})
	}

	sessions := make([]*core.Session, len(axes))
	for i, ax := range axes {
		shards := 0
		if ax.sharded {
			shards = shardCountFor(seed)
		}
		s, cleanup, err := buildSession(c, ax.parallel, ax.views, ax.cache, ax.dense, ax.segment, ax.lazy, ax.batched, shards)
		defer cleanup()
		if err != nil {
			add("", "setup/"+ax.name, err.Error())
			return rep
		}
		sessions[i] = s
	}
	base := sessions[0]

	// References for the concurrent batched sweep below.
	wants := make(map[string][]exec.Row, len(c.Statements))
	kinds := make(map[string]parser.BenchmarkKind, len(c.Statements))

	for _, stmt := range c.Statements {
		// Parse → render → parse round trip: the generator renders from an
		// AST, so the text is already canonical and must survive unchanged.
		st, err := parser.Parse(stmt)
		if err != nil {
			add(stmt, "parse", err.Error())
			continue
		}
		if got := st.Render(); got != stmt {
			add(stmt, "render-roundtrip", fmt.Sprintf("re-rendered as %q", got))
		}
		kind, err := base.BenchmarkKind(stmt)
		if err != nil {
			add(stmt, "bind", err.Error())
			continue
		}
		ref, _, span, err := execTracked(base, stmt, plan.NP)
		if err != nil {
			add(stmt, "base/NP", err.Error())
			continue
		}
		if traceEnabled {
			if msg := checkTrace(span); msg != "" {
				add(stmt, "base/NP trace", msg)
			}
		}
		want, err := canonRows(ref)
		if err != nil {
			add(stmt, "base/NP", err.Error())
			continue
		}
		wants[stmt] = want
		kinds[stmt] = kind

		for i, ax := range axes {
			sess := sessions[i]
			for _, strat := range core.FeasibleStrategies(kind) {
				runs := 1
				if ax.cache {
					runs = 2 // cold fill, then warm hit
				}
				for r := 0; r < runs; r++ {
					axis := fmt.Sprintf("%s/%v", ax.name, strat)
					if ax.cache {
						axis += map[int]string{0: " cold", 1: " warm"}[r]
					}
					// The cache-state expectation comes from a probe of the
					// same session, so statements whose bound plans collide on
					// one fingerprint (e.g. an explicit using clause spelling
					// out the default) are expected to hit on their first run.
					expect := qcache.StateOff
					if ax.cache {
						expect = qcache.StateMiss
						if p, perr := sess.PrepareWith(stmt, strat); perr == nil {
							expect = sess.CacheProbe(p)
						}
						if r == 1 {
							expect = qcache.StateHit
						}
					}
					res, state, span, err := execTracked(sess, stmt, strat)
					if err != nil {
						add(stmt, axis, err.Error())
						break
					}
					if traceEnabled {
						if msg := checkTrace(span); msg != "" {
							add(stmt, axis+" trace", msg)
						}
					}
					if state != expect {
						add(stmt, axis, fmt.Sprintf("cache state %q, expected %q", state, expect))
					}
					got, err := canonRows(res)
					if err != nil {
						add(stmt, axis, err.Error())
						break
					}
					if d := diffRows(want, got); d != "" {
						add(stmt, axis, d)
					}
					rep.Comparisons++
				}
			}
		}
	}

	// Concurrent sweep: the per-statement loop above drove the batched
	// axes one query at a time (single-query batches). Now fire every
	// (statement, strategy) pair at once against each batched session so
	// concurrent arrivals genuinely coalesce into multi-query shared
	// scans; every result must still match the reference bit-for-bit.
	for i, ax := range axes {
		if !ax.batched {
			continue
		}
		sess := sessions[i]
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, stmt := range c.Statements {
			want, ok := wants[stmt]
			if !ok {
				continue // the reference itself failed; already reported
			}
			for _, strat := range core.FeasibleStrategies(kinds[stmt]) {
				wg.Add(1)
				go func(stmt string, strat plan.Strategy, want []exec.Row) {
					defer wg.Done()
					axis := fmt.Sprintf("%s/%v sweep", ax.name, strat)
					res, _, _, err := execTracked(sess, stmt, strat)
					var detail string
					if err != nil {
						detail = err.Error()
					} else if got, cerr := canonRows(res); cerr != nil {
						detail = cerr.Error()
					} else {
						detail = diffRows(want, got)
					}
					mu.Lock()
					defer mu.Unlock()
					rep.Comparisons++
					if detail != "" {
						add(stmt, axis, detail)
					}
				}(stmt, strat, want)
			}
		}
		wg.Wait()
	}
	return rep
}
