package oracle

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/assess-olap/assess/internal/colstore"
	"github.com/assess-olap/assess/internal/core"
	"github.com/assess-olap/assess/internal/parser"
	"github.com/assess-olap/assess/internal/persist"
	"github.com/assess-olap/assess/internal/plan"
	"github.com/assess-olap/assess/internal/storage"
)

// defaultSeeds is the fixed table exercised by a plain `go test`; CI
// widens it with ORACLE_SEEDS. Discrepancies found in sweeps get pinned
// by name in TestRegressionSeeds, not appended here.
var defaultSeeds = []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}

// seedsUnderTest resolves the seed set from the environment:
// ORACLE_SEED=n reruns one seed (the repro line printed by a failure),
// ORACLE_SEEDS=n sweeps seeds 1..n, otherwise the fixed default table.
func seedsUnderTest(t *testing.T) []int64 {
	t.Helper()
	if v := os.Getenv("ORACLE_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("invalid ORACLE_SEED %q: %v", v, err)
		}
		return []int64{seed}
	}
	if v := os.Getenv("ORACLE_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("invalid ORACLE_SEEDS %q", v)
		}
		seeds := make([]int64, n)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}
		return seeds
	}
	return defaultSeeds
}

// TestDifferential is the oracle entry point: for every seed, generate a
// cube and statement batch and cross-check all execution axes against
// the serial NP reference.
func TestDifferential(t *testing.T) {
	for _, seed := range seedsUnderTest(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rep := Run(seed)
			if rep.Comparisons == 0 {
				t.Fatalf("seed %d: no comparisons ran", seed)
			}
			for _, d := range rep.Discrepancies {
				t.Error(d.String())
			}
		})
	}
}

// regressionSeeds pins seeds that exposed real bugs during development,
// so the exact generated workload that caught each bug stays in the
// suite forever. The map key documents the bug.
var regressionSeeds = map[string]int64{
	// Distribution labelers split equal comparison values by row order,
	// and a partitioned scan merges its per-worker tables in a different
	// row order than a serial scan: par/NP flipped a quartile label
	// ("top-3" vs "top-4") on tied cells. Fixed by canonicalizing the
	// cube order in exec before OpLabel.
	"label-tie-order-parallel-scan": 1,
	// rank() breaks ties by row order, and the POP pivot-from-view path
	// emits rows in view order rather than scan order: views/POP ranked
	// tied cells 14 vs NP's 12. Fixed by canonicalizing the cube order in
	// exec before holistic OpTransforms.
	"rank-tie-order-view-pivot": 39,
	// assess* past benchmarks: the NP plan pivoted the benchmark cube on
	// the latest past slice, dropping coordinates whose latest slice was
	// empty — JOP/POP still predicted from the remaining series points
	// (benchmark 66 vs NP's NaN). Fixed by anchoring the NP client pivot
	// on the target member with all past slices as neighbors.
	"past-star-partial-series-np": 3,
}

func TestRegressionSeeds(t *testing.T) {
	for name, seed := range regressionSeeds {
		name, seed := name, seed
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep := Run(seed)
			for _, d := range rep.Discrepancies {
				t.Error(d.String())
			}
		})
	}
}

// TestGenerateDeterministic locks the generator to its seed: the same
// seed must reproduce the identical statement batch, or the repro lines
// printed by failures would be meaningless.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(42), Generate(42)
	if len(a.Statements) != len(b.Statements) {
		t.Fatalf("statement counts differ: %d vs %d", len(a.Statements), len(b.Statements))
	}
	for i := range a.Statements {
		if a.Statements[i] != b.Statements[i] {
			t.Errorf("statement %d differs:\n  %s\n  %s", i, a.Statements[i], b.Statements[i])
		}
	}
	if a.Fact.Rows() != b.Fact.Rows() {
		t.Errorf("fact rows differ: %d vs %d", a.Fact.Rows(), b.Fact.Rows())
	}
}

// TestGeneratorShapes checks the generator's own contract over a seed
// range: every case carries at least one statement per benchmark kind,
// and every statement parses and binds against the generated catalog.
func TestGeneratorShapes(t *testing.T) {
	wantKinds := []parser.BenchmarkKind{
		parser.BenchConstant, parser.BenchExternal, parser.BenchSibling,
		parser.BenchPast, parser.BenchAncestor,
	}
	for seed := int64(1); seed <= 20; seed++ {
		c := Generate(seed)
		if len(c.Statements) < len(stmtKinds) {
			t.Fatalf("seed %d: only %d statements", seed, len(c.Statements))
		}
		s, _, err := buildSession(c, false, "", false, false, false, false, false, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		kinds := make(map[parser.BenchmarkKind]int)
		absolute := 0
		for _, stmt := range c.Statements {
			st, err := parser.Parse(stmt)
			if err != nil {
				t.Fatalf("seed %d: generated statement does not parse: %v\n  %s", seed, err, stmt)
			}
			if st.Against == nil {
				absolute++
			}
			k, err := s.BenchmarkKind(stmt)
			if err != nil {
				t.Fatalf("seed %d: generated statement does not bind: %v\n  %s", seed, err, stmt)
			}
			kinds[k]++
		}
		for _, k := range wantKinds {
			if kinds[k] == 0 {
				t.Errorf("seed %d: no %v statement generated", seed, k)
			}
		}
		if absolute == 0 {
			t.Errorf("seed %d: no absolute (benchmark-free) statement generated", seed)
		}
	}
}

// TestLatticeViewsGenerated guards the lattice axes against vacuity:
// across the seed range every case must carry at least one lattice
// view, and materializing all of them on both cubes must succeed (the
// harness's lattice session construction depends on it).
func TestLatticeViewsGenerated(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		c := Generate(seed)
		if len(c.LatticeViews) == 0 {
			t.Fatalf("seed %d: no lattice views generated", seed)
		}
		if _, _, err := buildSession(c, false, "lattice", false, false, false, false, false, 0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFeasibleStrategiesCovered asserts the axis matrix actually spans
// multiple strategies: across the default seeds, JOP and POP plans must
// both appear, or the differential property degenerates to NP-only.
func TestFeasibleStrategiesCovered(t *testing.T) {
	counts := make(map[string]int)
	for _, seed := range defaultSeeds {
		c := Generate(seed)
		s, _, err := buildSession(c, false, "", false, false, false, false, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, stmt := range c.Statements {
			k, err := s.BenchmarkKind(stmt)
			if err != nil {
				continue
			}
			for _, strat := range core.FeasibleStrategies(k) {
				counts[strat.String()]++
			}
		}
	}
	for _, want := range []string{"NP", "JOP", "POP"} {
		if counts[want] == 0 {
			t.Errorf("no statement admits a %s plan across the default seeds (%v)", want, counts)
		}
	}
}

// copyFact rebuilds a resident fact table row by row so two sessions
// can append to independent storage while sharing the schema.
func copyFact(f *storage.FactTable) *storage.FactTable {
	cp := storage.NewFactTable(f.Schema)
	cp.Reserve(f.Rows())
	keys := make([]int32, len(f.Keys))
	vals := make([]float64, len(f.Meas))
	for r := 0; r < f.Rows(); r++ {
		for h := range keys {
			keys[h] = f.Keys[h][r]
		}
		for m := range vals {
			vals[m] = f.Meas[m][r]
		}
		cp.MustAppend(keys, vals)
	}
	return cp
}

// TestShardedAppendReconciliation sweeps the statement batch across an
// unsharded reference and a multi-shard scatter-gather cluster, then
// appends rows through the coordinator mid-sweep and sweeps again.
// Results must stay bit-exact, and the sharded session's generation
// must advance with the appends: the coordinator routes each row to
// its hash shard, mirrors it into the local copy, and absorbs the
// reported shard generation without double-counting — the machinery
// qcache/view coherence rides on (the sharded session runs with the
// query cache enabled so a stale post-append hit would diverge).
// ORACLE_SEEDS widens the sweep in CI like TestDifferential.
func TestShardedAppendReconciliation(t *testing.T) {
	for _, seed := range seedsUnderTest(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			c := Generate(seed)
			res := core.NewSession()
			if err := res.RegisterCube(TargetCube, c.Fact); err != nil {
				t.Fatal(err)
			}
			if err := res.RegisterCube(ExtCube, c.ExtFact); err != nil {
				t.Fatal(err)
			}

			// The sharded session needs its own local copies: coordinator
			// appends write shard + local, and the reference appends must
			// not land in the same storage twice.
			shFact, shExt := copyFact(c.Fact), copyFact(c.ExtFact)
			sh := core.NewSession()
			if err := sh.RegisterCube(TargetCube, shFact); err != nil {
				t.Fatal(err)
			}
			if err := sh.RegisterCube(ExtCube, shExt); err != nil {
				t.Fatal(err)
			}
			shards := []int{2, 3, 5}[seed%3]
			if err := shardSession(sh, shFact, shExt, shards, false, false); err != nil {
				t.Fatal(err)
			}
			sh.EnableCache(0)
			coord := sh.Distributed()

			sweep := func(stage string) {
				t.Helper()
				for _, stmt := range c.Statements {
					want, _, _, err := execTracked(res, stmt, plan.NP)
					if err != nil {
						t.Fatalf("%s: reference: %v\n  stmt: %s", stage, err, stmt)
					}
					got, _, _, err := execTracked(sh, stmt, plan.NP)
					if err != nil {
						t.Fatalf("%s: sharded: %v\n  stmt: %s", stage, err, stmt)
					}
					w, err := canonRows(want)
					if err != nil {
						t.Fatal(err)
					}
					g, err := canonRows(got)
					if err != nil {
						t.Fatal(err)
					}
					if d := diffRows(w, g); d != "" {
						t.Errorf("%s: sharded diverges from reference: %s\n  stmt: %s", stage, d, stmt)
					}
				}
			}
			sweep("cold")

			// Mid-sweep appends: replay the first rows of the fact into the
			// reference directly and into the cluster through the
			// coordinator, which hashes each row to its shard.
			const extra = 37
			genBefore := sh.Generation()
			keys := make([]int32, len(c.Schema.Hiers))
			vals := make([]float64, len(c.Schema.Measures))
			for r := 0; r < extra; r++ {
				for h := range keys {
					keys[h] = c.Fact.Keys[h][r]
				}
				for m := range vals {
					vals[m] = c.Fact.Meas[m][r]
				}
				if err := c.Fact.Append(keys, vals); err != nil {
					t.Fatal(err)
				}
				if err := coord.Append(context.Background(), TargetCube, keys, vals); err != nil {
					t.Fatal(err)
				}
			}
			if got := sh.Generation(); got != genBefore+extra {
				t.Fatalf("generation after %d coordinator appends: %d, want %d", extra, got, genBefore+extra)
			}
			if shFact.Rows() != c.Fact.Rows() {
				t.Fatalf("row counts diverge: sharded local %d, reference %d", shFact.Rows(), c.Fact.Rows())
			}
			sweep("after-append")
		})
	}
}

// TestSegmentWALCompaction sweeps the statement batch across the
// resident and segment backends three times: cold from segments, after
// identical WAL appends to both backends mid-sweep, and after an
// explicit compaction folds the WAL tail into segments. Results must
// stay bit-exact throughout, the segment session's generation must
// advance with the appends (qcache/view coherence), and compaction must
// actually run.
func TestSegmentWALCompaction(t *testing.T) {
	for _, seed := range []int64{3, 7, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := Generate(seed)
			res := core.NewSession()
			if err := res.RegisterCube(TargetCube, c.Fact); err != nil {
				t.Fatal(err)
			}
			if err := res.RegisterCube(ExtCube, c.ExtFact); err != nil {
				t.Fatal(err)
			}

			opts := colstore.Options{SegmentRows: oracleSegmentRows, AutoCompactRows: -1}
			factDir := filepath.Join(t.TempDir(), "fact")
			if err := persist.SaveCubeDir(factDir, c.Fact, opts); err != nil {
				t.Fatal(err)
			}
			segFact, factSt, err := persist.OpenCubeDir(factDir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer factSt.Close()
			segExt, extCleanup, err := segmentCopy(c.ExtFact, false)
			if err != nil {
				t.Fatal(err)
			}
			defer extCleanup()
			persist.ReconcileSchemas(segFact.Schema, segExt.Schema)

			seg := core.NewSession()
			if err := seg.RegisterCube(TargetCube, segFact); err != nil {
				t.Fatal(err)
			}
			if err := seg.RegisterCube(ExtCube, segExt); err != nil {
				t.Fatal(err)
			}
			// Cache on: a stale hit after an append would diverge from the
			// resident reference, so the sweeps also prove generation-based
			// invalidation works for WAL'd appends.
			seg.EnableCache(0)

			sweep := func(stage string) {
				t.Helper()
				for _, stmt := range c.Statements {
					want, _, _, err := execTracked(res, stmt, plan.NP)
					if err != nil {
						t.Fatalf("%s: resident: %v\n  stmt: %s", stage, err, stmt)
					}
					got, _, _, err := execTracked(seg, stmt, plan.NP)
					if err != nil {
						t.Fatalf("%s: segment: %v\n  stmt: %s", stage, err, stmt)
					}
					w, err := canonRows(want)
					if err != nil {
						t.Fatal(err)
					}
					g, err := canonRows(got)
					if err != nil {
						t.Fatal(err)
					}
					if d := diffRows(w, g); d != "" {
						t.Errorf("%s: backends diverge: %s\n  stmt: %s", stage, d, stmt)
					}
				}
			}
			sweep("cold")

			// Mid-sweep WAL appends: replay the first rows of the fact into
			// both backends identically.
			const extra = 37
			genBefore := seg.Generation()
			keys := make([]int32, len(c.Schema.Hiers))
			vals := make([]float64, len(c.Schema.Measures))
			for r := 0; r < extra; r++ {
				for h := range keys {
					keys[h] = c.Fact.Keys[h][r]
				}
				for m := range vals {
					vals[m] = c.Fact.Meas[m][r]
				}
				if err := c.Fact.Append(keys, vals); err != nil {
					t.Fatal(err)
				}
				if err := segFact.Append(keys, vals); err != nil {
					t.Fatal(err)
				}
			}
			if got := seg.Generation(); got != genBefore+extra {
				t.Fatalf("generation after %d WAL appends: %d, want %d", extra, got, genBefore+extra)
			}
			if segFact.Rows() != c.Fact.Rows() {
				t.Fatalf("row counts diverge: segment %d, resident %d", segFact.Rows(), c.Fact.Rows())
			}
			sweep("after-append")

			before := factSt.Info()
			if before.TailRows != extra {
				t.Fatalf("WAL tail %d rows, want %d", before.TailRows, extra)
			}
			if err := factSt.Compact(); err != nil {
				t.Fatal(err)
			}
			after := factSt.Info()
			if after.Compactions <= before.Compactions || after.TailRows != 0 {
				t.Fatalf("compaction did not fold the tail: %+v → %+v", before, after)
			}
			sweep("after-compact")
		})
	}
}
