package oracle

import (
	"fmt"
	"sort"

	"github.com/assess-olap/assess/internal/exec"
	"github.com/assess-olap/assess/internal/testutil"
)

// canonRows extracts the result rows in canonical order: sorted by the
// member names of the joined coordinate. Coordinates are unique within a
// result, so the order is total and any two equivalent results align
// row-by-row.
func canonRows(r *exec.Result) ([]exec.Row, error) {
	rows, err := r.Rows()
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool {
		return coordLess(rows[i].Coordinate, rows[j].Coordinate)
	})
	return rows, nil
}

func coordLess(a, b []string) bool {
	for k := range a {
		if k >= len(b) {
			return false
		}
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

// diffRows compares two canonicalized result sets and describes the
// first difference ("" when equivalent). Coordinates and labels must
// match exactly; the numeric columns are compared ULP-tolerantly
// (NaN == NaN, so assess* null benchmarks compare equal).
func diffRows(want, got []exec.Row) string {
	if len(want) != len(got) {
		return fmt.Sprintf("result has %d cells, reference has %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if coordLess(w.Coordinate, g.Coordinate) || coordLess(g.Coordinate, w.Coordinate) {
			return fmt.Sprintf("cell %d: coordinate %v, reference has %v", i, g.Coordinate, w.Coordinate)
		}
		if !testutil.FloatEq(w.Measure, g.Measure) {
			return fmt.Sprintf("cell %d %v: measure %v, reference %v", i, w.Coordinate, g.Measure, w.Measure)
		}
		if !testutil.FloatEq(w.Benchmark, g.Benchmark) {
			return fmt.Sprintf("cell %d %v: benchmark %v, reference %v", i, w.Coordinate, g.Benchmark, w.Benchmark)
		}
		if !testutil.FloatEq(w.Comparison, g.Comparison) {
			return fmt.Sprintf("cell %d %v: comparison %v, reference %v", i, w.Coordinate, g.Comparison, w.Comparison)
		}
		if w.Label != g.Label {
			return fmt.Sprintf("cell %d %v: label %q, reference %q", i, w.Coordinate, g.Label, w.Label)
		}
	}
	return ""
}
