// Package oracle is a differential correctness oracle for the assess
// evaluation stack. From one seed it deterministically generates a
// random star schema (hierarchies, dictionaries, fact rows), an
// external benchmark cube reconciled with it, and a batch of well-typed
// assess statements over them; the harness (harness.go) then evaluates
// every statement along every execution axis — NP vs JOP vs POP plan,
// serial vs partitioned fact scan, scan vs exact materialized view vs
// roll-up from a strictly finer view, and cache-off vs cold vs warm
// query-result cache — and asserts that all of them produce the same
// canonicalized result set.
//
// The paper's central optimization claim (Section 5) is that the JOP
// and POP rewrites are semantically equivalent to the naive plan; the
// oracle turns that claim, plus the equivalence of the axes added on
// top of it, into an executable property: any discrepancy reproduces
// from a one-line seed.
//
// Measure values are generated as small integers (stored as float64).
// Integer sums stay exact under any association order, so partitioned
// scans, merged partial aggregates, and re-ordered client joins produce
// bitwise-identical aggregates, and label comparison can be exact. The
// harness still compares floats ULP-tolerantly to stay robust if a
// future axis introduces genuine rounding differences.
package oracle

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/assess-olap/assess/internal/mdm"
	"github.com/assess-olap/assess/internal/parser"
	"github.com/assess-olap/assess/internal/storage"
)

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// TargetCube and ExtCube are the catalog names the generated cubes are
// registered under.
const (
	TargetCube = "CUBE"
	ExtCube    = "EXTB"
)

// Case is everything generated from one seed.
type Case struct {
	Seed      int64
	Schema    *mdm.Schema
	Fact      *storage.FactTable
	ExtSchema *mdm.Schema
	ExtFact   *storage.FactTable
	// Statements are rendered assess statements, each guaranteed by
	// construction to parse and bind against the generated catalog.
	Statements []string
	// Views are group-by level-name sets worth materializing: the
	// harness materializes them on some sessions to cross-check the
	// view path against plain fact scans.
	Views [][]string
	// LatticeViews are strictly finer covering views: for each
	// statement, the finest levels it touches with one hierarchy
	// refined (or added), so the aggregate navigator must answer by
	// re-aggregating view cells through the roll-up lattice rather
	// than serving them verbatim.
	LatticeViews [][]string
}

// genHier builds a hierarchy with the given per-level dictionary sizes
// (finest first). Member ids roll up monotonically (parent = id·|up|/|lo|),
// so member names — zero-padded by id — sort lexicographically at every
// level; hierarchy 0 doubles as the temporal hierarchy, where that order
// is the chronological order past benchmarks rely on.
func genHier(h int, sizes []int) *mdm.Hierarchy {
	levels := make([]string, len(sizes))
	for d := range sizes {
		levels[d] = fmt.Sprintf("lv%d%c", h, 'a'+d)
	}
	hier := mdm.NewHierarchy(fmt.Sprintf("H%d", h), levels...)
	for i := 0; i < sizes[0]; i++ {
		path := make([]string, len(sizes))
		id := i
		for d := range sizes {
			path[d] = fmt.Sprintf("h%dl%dm%03d", h, d, id)
			if d+1 < len(sizes) {
				id = id * sizes[d+1] / sizes[d]
			}
		}
		hier.MustAddMember(path...)
	}
	return hier
}

// genSizes draws a level-size profile: base cardinality first, each
// coarser level strictly smaller but at least 2.
func genSizes(rng *rand.Rand, depth int) []int {
	sizes := make([]int, depth)
	sizes[0] = 6 + rng.Intn(10) // 6..15 base members
	for d := 1; d < depth; d++ {
		lo := 2
		hi := sizes[d-1] - 1
		if hi < lo {
			hi = lo
		}
		sizes[d] = lo + rng.Intn(hi-lo+1)
	}
	return sizes
}

var aggOps = []mdm.AggOp{mdm.AggSum, mdm.AggAvg, mdm.AggMin, mdm.AggMax, mdm.AggCount}

// Generate builds the full case for a seed.
func Generate(seed int64) *Case {
	rng := rand.New(rand.NewSource(seed))
	c := &Case{Seed: seed}

	// Hierarchies: hier 0 is temporal (depth >= 2 so past statements can
	// slice at a coarser level too); hier 1 always has depth >= 2 so an
	// ancestor benchmark is always expressible; 0-2 extra hierarchies.
	nHiers := 2 + rng.Intn(3)
	hiers := make([]*mdm.Hierarchy, nHiers)
	hiers[0] = genHier(0, genSizes(rng, 2+rng.Intn(2)))
	hiers[1] = genHier(1, genSizes(rng, 2+rng.Intn(2)))
	for h := 2; h < nHiers; h++ {
		hiers[h] = genHier(h, genSizes(rng, 1+rng.Intn(3)))
	}

	// Measures: m0 is always a sum (the most common assessed measure);
	// the rest draw random aggregation operators.
	nMeas := 1 + rng.Intn(3)
	measures := make([]mdm.Measure, nMeas)
	measures[0] = mdm.Measure{Name: "m0", Op: mdm.AggSum}
	for m := 1; m < nMeas; m++ {
		measures[m] = mdm.Measure{Name: fmt.Sprintf("m%d", m), Op: aggOps[rng.Intn(len(aggOps))]}
	}
	c.Schema = mdm.NewSchema(TargetCube, hiers, measures)

	// The external benchmark cube shares every hierarchy (reconciled in
	// the sense of Definition 3.1), with one measure of its own.
	extOp := aggOps[rng.Intn(len(aggOps))]
	c.ExtSchema = mdm.NewSchema(ExtCube, hiers, []mdm.Measure{{Name: "x0", Op: extOp}})

	// Fact rows: uniform keys, small-integer measure values (see the
	// package comment for why integers matter). The external cube is
	// sparser so drill-across joins genuinely drop cells, exercising the
	// assess vs assess* distinction.
	c.Fact = genFact(rng, c.Schema, 800+rng.Intn(2400), 1.0)
	c.ExtFact = genFact(rng, c.ExtSchema, 300+rng.Intn(900), 0.7)

	c.Statements = genStatements(rng, c)
	c.Views = genViews(rng, c.Statements)
	c.LatticeViews = genLatticeViews(rng, c)
	return c
}

// genFact fills a fact table. keyFrac < 1 restricts each hierarchy to a
// prefix of its base dictionary, leaving some members fact-less.
func genFact(rng *rand.Rand, s *mdm.Schema, rows int, keyFrac float64) *storage.FactTable {
	f := storage.NewFactTable(s)
	f.Reserve(rows)
	limits := make([]int, len(s.Hiers))
	for h, hier := range s.Hiers {
		n := hier.Dict(0).Len()
		limits[h] = int(float64(n) * keyFrac)
		if limits[h] < 1 {
			limits[h] = 1
		}
	}
	keys := make([]int32, len(s.Hiers))
	vals := make([]float64, len(s.Measures))
	for r := 0; r < rows; r++ {
		for h := range keys {
			keys[h] = int32(rng.Intn(limits[h]))
		}
		for m := range vals {
			vals[m] = float64(rng.Intn(401) - 200)
		}
		f.MustAppend(keys, vals)
	}
	return f
}

// pick returns n distinct values drawn from 0..max-1.
func pick(rng *rand.Rand, max, n int) []int {
	perm := rng.Perm(max)
	return perm[:n]
}

// stmtKinds are the benchmark shapes the generator cycles through; the
// first six guarantee one statement of every kind per case.
var stmtKinds = []string{"absolute", "constant", "external", "sibling", "past", "ancestor"}

func genStatements(rng *rand.Rand, c *Case) []string {
	n := len(stmtKinds) + rng.Intn(7) // 6..12 statements
	seen := make(map[string]bool)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		kind := stmtKinds[i%len(stmtKinds)]
		st := genStatement(rng, c, kind)
		text := st.Render()
		if seen[text] {
			continue
		}
		seen[text] = true
		out = append(out, text)
	}
	return out
}

// levelName returns the schema name of hier h's level at depth d.
func levelName(s *mdm.Schema, h, d int) string {
	return s.Hiers[h].Levels()[d]
}

// genStatement builds one statement AST of the requested benchmark
// kind. Every choice respects the binder's validation rules, so the
// rendered text must parse and bind; the harness treats a bind failure
// as a generator bug and reports it with the seed.
func genStatement(rng *rand.Rand, c *Case, kind string) *parser.Statement {
	s := c.Schema
	st := &parser.Statement{Cube: TargetCube, Star: rng.Float64() < 0.3}
	st.Measure = s.Measures[rng.Intn(len(s.Measures))].Name

	// byLevel[h] = depth of hier h's by-clause level, or -1 when the
	// hierarchy is fully aggregated. Kind-specific requirements fill in
	// mandatory levels first; extras are sprinkled afterwards.
	byLevel := make([]int, len(s.Hiers))
	for h := range byLevel {
		byLevel[h] = -1
	}

	switch kind {
	case "absolute":
		// no against clause

	case "constant":
		st.Against = &parser.Benchmark{Kind: parser.BenchConstant, Value: float64(rng.Intn(201) - 100)}

	case "external":
		st.Against = &parser.Benchmark{Kind: parser.BenchExternal, Cube: ExtCube, Measure: "x0"}

	case "sibling":
		h := rng.Intn(len(s.Hiers))
		d := rng.Intn(s.Hiers[h].Depth())
		dict := s.Hiers[h].Dict(d)
		for dict.Len() < 2 { // every generated level has >= 2 members, but stay defensive
			h = (h + 1) % len(s.Hiers)
			d = 0
			dict = s.Hiers[h].Dict(d)
		}
		ids := pick(rng, dict.Len(), 2)
		byLevel[h] = d
		st.For = append(st.For, parser.Predicate{
			Level: levelName(s, h, d), Values: []string{dict.Name(int32(ids[0]))},
		})
		st.Against = &parser.Benchmark{
			Kind: parser.BenchSibling, Level: levelName(s, h, d), Member: dict.Name(int32(ids[1])),
		}

	case "past":
		d := rng.Intn(s.Hiers[0].Depth())
		dict := s.Hiers[0].Dict(d)
		// Member ids coincide with lexicographic (chronological) order;
		// id >= 1 guarantees at least one predecessor.
		u := 1 + rng.Intn(dict.Len()-1)
		byLevel[0] = d
		// The temporal slice must be the first single-member predicate on
		// a by-clause level, so it leads the for clause.
		st.For = append(st.For, parser.Predicate{
			Level: levelName(s, 0, d), Values: []string{dict.Name(int32(u))},
		})
		st.Against = &parser.Benchmark{Kind: parser.BenchPast, K: 1 + rng.Intn(4)}

	case "ancestor":
		// Hier 1 always has depth >= 2: child at a proper descendant of
		// the ancestor level.
		h := 1
		depth := s.Hiers[h].Depth()
		anc := 1 + rng.Intn(depth-1)
		child := rng.Intn(anc)
		byLevel[h] = child
		st.Against = &parser.Benchmark{Kind: parser.BenchAncestor, Level: levelName(s, h, anc)}
	}

	// Extra by-levels on unused hierarchies (keep the result cardinality
	// bounded: at most three grouped hierarchies).
	grouped := 0
	for _, d := range byLevel {
		if d >= 0 {
			grouped++
		}
	}
	for h := range s.Hiers {
		if grouped >= 3 {
			break
		}
		if byLevel[h] < 0 && rng.Float64() < 0.6 {
			byLevel[h] = rng.Intn(s.Hiers[h].Depth())
			grouped++
		}
	}
	if grouped == 0 { // a by clause is mandatory
		h := rng.Intn(len(s.Hiers))
		byLevel[h] = rng.Intn(s.Hiers[h].Depth())
	}
	for h, d := range byLevel {
		if d >= 0 {
			st.By = append(st.By, levelName(s, h, d))
		}
	}

	// Extra predicates. For past statements they must not precede the
	// temporal slice as a single-member predicate on a by-level, so they
	// are restricted to non-grouped hierarchies; other kinds may filter
	// anywhere not already predicated.
	for h := range s.Hiers {
		if rng.Float64() > 0.3 {
			continue
		}
		if predicated(st.For, s, h) {
			continue
		}
		if kind == "past" && byLevel[h] >= 0 {
			continue
		}
		d := rng.Intn(s.Hiers[h].Depth())
		dict := s.Hiers[h].Dict(d)
		nVals := 1 + rng.Intn(2)
		if nVals > dict.Len() {
			nVals = dict.Len()
		}
		ids := pick(rng, dict.Len(), nVals)
		sort.Ints(ids)
		vals := make([]string, len(ids))
		for i, id := range ids {
			vals[i] = dict.Name(int32(id))
		}
		st.For = append(st.For, parser.Predicate{Level: levelName(s, h, d), Values: vals})
	}

	genUsing(rng, c, st)
	genLabels(rng, c, st, byLevel)
	return st
}

// predicated reports whether the for clause already filters hierarchy h.
func predicated(preds []parser.Predicate, s *mdm.Schema, h int) bool {
	for _, p := range preds {
		if ref, ok := s.FindLevel(p.Level); ok && ref.Hier == h {
			return true
		}
	}
	return false
}

// genUsing draws a comparison expression compatible with the statement's
// benchmark (or leaves it to the binder's default).
func genUsing(rng *rand.Rand, c *Case, st *parser.Statement) {
	m := &parser.Ref{Name: st.Measure}
	if st.Against == nil {
		switch rng.Intn(5) {
		case 0: // default identity(m)
		case 1:
			st.Using = &parser.Call{Name: "identity", Args: []parser.Expr{m}}
		case 2:
			st.Using = &parser.Call{Name: "zScore", Args: []parser.Expr{m}}
		case 3:
			st.Using = &parser.Call{Name: "rank", Args: []parser.Expr{m}}
		case 4:
			st.Using = &parser.Call{Name: "minMaxNorm", Args: []parser.Expr{m}}
		}
		return
	}
	benchName := st.Measure
	if st.Against.Kind == parser.BenchExternal {
		benchName = st.Against.Measure
	}
	bm := &parser.Ref{Benchmark: true, Name: benchName}
	diff := &parser.Call{Name: "difference", Args: []parser.Expr{m, bm}}
	switch rng.Intn(9) {
	case 0: // default difference(m, benchmark.m)
	case 1:
		st.Using = diff
	case 2:
		st.Using = &parser.Call{Name: "absDifference", Args: []parser.Expr{m, bm}}
	case 3:
		st.Using = &parser.Call{Name: "ratio", Args: []parser.Expr{m, bm}}
	case 4:
		st.Using = &parser.Call{Name: "normDifference", Args: []parser.Expr{m, bm}}
	case 5:
		st.Using = &parser.Call{Name: "percOfTotal", Args: []parser.Expr{diff}}
	case 6:
		st.Using = &parser.Call{Name: "minMaxNorm", Args: []parser.Expr{diff}}
	case 7:
		st.Using = &parser.Call{Name: "rank", Args: []parser.Expr{diff}}
	case 8:
		st.Using = &parser.Call{Name: "ratio", Args: []parser.Expr{diff, &parser.Number{Value: float64(1 + rng.Intn(100))}}}
	}
}

// namedLabelers are the library labelers the generator draws from.
// "clusters" (1-D k-means) is excluded: its silhouette search is
// quadratic in the result cardinality, which would dominate oracle
// runtime without adding coverage beyond the quantile labelers.
var namedLabelers = []string{"quartiles", "terciles", "quintiles", "deciles", "zscore", "5stars"}

// genLabels draws a labels clause: a library labeler or an inline
// complete range set, optionally scoped with within.
func genLabels(rng *rand.Rand, c *Case, st *parser.Statement, byLevel []int) {
	if rng.Float64() < 0.6 {
		st.Labels.Named = namedLabelers[rng.Intn(len(namedLabelers))]
	} else {
		b0 := float64(rng.Intn(101) - 60)
		b1 := b0 + float64(1+rng.Intn(60))
		st.Labels.Ranges = []parser.Range{
			{Lo: negInf, Hi: b0, HiOpen: true, Label: "low"},
			{Lo: b0, Hi: b1, HiOpen: true, Label: "mid"},
			{Lo: b1, Hi: posInf, Label: "high"},
		}
	}
	// within: a coarser-or-equal level of a grouped hierarchy.
	if rng.Float64() < 0.2 {
		var candidates []string
		for h, d := range byLevel {
			if d < 0 {
				continue
			}
			for dd := d; dd < c.Schema.Hiers[h].Depth(); dd++ {
				candidates = append(candidates, levelName(c.Schema, h, dd))
			}
		}
		if len(candidates) > 0 {
			st.Labels.Within = candidates[rng.Intn(len(candidates))]
		}
	}
}

// genViews picks up to three distinct by-clause level sets from the
// generated statements as materialization candidates.
func genViews(rng *rand.Rand, stmts []string) [][]string {
	seen := make(map[string]bool)
	var views [][]string
	for _, text := range stmts {
		st, err := parser.Parse(text)
		if err != nil {
			continue
		}
		key := fmt.Sprint(st.By)
		if seen[key] {
			continue
		}
		seen[key] = true
		views = append(views, append([]string(nil), st.By...))
	}
	rng.Shuffle(len(views), func(i, j int) { views[i], views[j] = views[j], views[i] })
	if len(views) > 3 {
		views = views[:3]
	}
	return views
}

// genLatticeViews derives, for each statement, a materialization
// candidate that covers the statement's queries through the roll-up
// lattice without matching them exactly. Per hierarchy the view keeps
// the finest level the statement touches (by clause, predicates,
// sibling/ancestor benchmark levels — the navigator's covering rule
// needs predicate hierarchies too), then the set is made strictly
// finer: one touched hierarchy drops a level, or an untouched
// hierarchy is added, so answering must re-aggregate view cells.
func genLatticeViews(rng *rand.Rand, c *Case) [][]string {
	s := c.Schema
	seen := make(map[string]bool)
	var views [][]string
	for _, text := range c.Statements {
		st, err := parser.Parse(text)
		if err != nil {
			continue
		}
		// depth[h]: finest level of hier h the statement touches, -1 when
		// untouched (fully aggregated, no predicate).
		depth := make([]int, len(s.Hiers))
		for h := range depth {
			depth[h] = -1
		}
		touch := func(name string) {
			if ref, ok := s.FindLevel(name); ok {
				if depth[ref.Hier] < 0 || ref.Level < depth[ref.Hier] {
					depth[ref.Hier] = ref.Level
				}
			}
		}
		for _, lv := range st.By {
			touch(lv)
		}
		for _, p := range st.For {
			touch(p.Level)
		}
		if st.Against != nil && st.Against.Level != "" {
			touch(st.Against.Level)
		}
		// Strictly refine: prefer dropping a touched hierarchy one level
		// finer; otherwise pull in an untouched hierarchy at any level.
		order := rng.Perm(len(depth))
		finer := false
		for _, h := range order {
			if depth[h] > 0 {
				depth[h]--
				finer = true
				break
			}
		}
		if !finer {
			for _, h := range order {
				if depth[h] < 0 {
					depth[h] = rng.Intn(s.Hiers[h].Depth())
					break
				}
			}
		}
		var names []string
		for h, d := range depth {
			if d >= 0 {
				names = append(names, levelName(s, h, d))
			}
		}
		if len(names) == 0 {
			continue
		}
		key := fmt.Sprint(names)
		if seen[key] {
			continue
		}
		seen[key] = true
		views = append(views, names)
	}
	if len(views) > 4 {
		views = views[:4]
	}
	return views
}
