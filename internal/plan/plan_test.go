package plan

import (
	"strings"
	"testing"

	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/parser"
	"github.com/assess-olap/assess/internal/sales"
	"github.com/assess-olap/assess/internal/semantic"
)

func bind(t *testing.T, stmt string) (*semantic.Bound, *engine.Engine) {
	t.Helper()
	ds := sales.Generate(2000, 3)
	e := engine.New()
	if err := e.Register("SALES", ds.Fact); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("SALES_TARGET", ds.External); err != nil {
		t.Fatal(err)
	}
	st, err := parser.Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := semantic.NewBinder(e).Bind(st)
	if err != nil {
		t.Fatal(err)
	}
	return b, e
}

const (
	constantStmt = `with SALES by month assess storeSales against 1000
		using ratio(storeSales, 1000) labels quartiles`
	externalStmt = `with SALES by month assess storeSales
		against SALES_TARGET.expectedSales labels quartiles`
	siblingStmt = `with SALES for country = 'Italy' by product, country
		assess quantity against country = 'France' labels quartiles`
	pastStmt = `with SALES for month = '1997-07' by month, store
		assess storeSales against past 4 labels quartiles`
)

func TestFeasibility(t *testing.T) {
	cases := []struct {
		kind parser.BenchmarkKind
		np   bool
		jop  bool
		pop  bool
	}{
		{parser.BenchConstant, true, false, false},
		{parser.BenchExternal, true, true, false},
		{parser.BenchSibling, true, true, true},
		{parser.BenchPast, true, true, true},
	}
	for _, c := range cases {
		if Feasible(NP, c.kind) != c.np || Feasible(JOP, c.kind) != c.jop || Feasible(POP, c.kind) != c.pop {
			t.Errorf("%v feasibility = (%v, %v, %v), want (%v, %v, %v)", c.kind,
				Feasible(NP, c.kind), Feasible(JOP, c.kind), Feasible(POP, c.kind),
				c.np, c.jop, c.pop)
		}
	}
}

func TestBuildRejectsInfeasible(t *testing.T) {
	b, _ := bind(t, constantStmt)
	if _, err := Build(b, JOP); err == nil {
		t.Error("JOP accepted for a constant benchmark")
	}
	if _, err := Build(b, POP); err == nil {
		t.Error("POP accepted for a constant benchmark")
	}
	b2, _ := bind(t, externalStmt)
	if _, err := Build(b2, POP); err == nil {
		t.Error("POP accepted for an external benchmark")
	}
}

func opKinds(p *Plan) []OpKind {
	out := make([]OpKind, len(p.Ops))
	for i, op := range p.Ops {
		out[i] = op.Kind
	}
	return out
}

func eqKinds(a []OpKind, b ...OpKind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlanShapes(t *testing.T) {
	b, _ := bind(t, constantStmt)
	p, err := Build(b, NP)
	if err != nil {
		t.Fatal(err)
	}
	if !eqKinds(opKinds(p), OpGet, OpTransform, OpTransform, OpLabel) {
		t.Errorf("constant NP ops = %v", opKinds(p))
	}

	b, _ = bind(t, siblingStmt)
	p, _ = Build(b, NP)
	if !eqKinds(opKinds(p), OpGet, OpGet, OpClientJoin, OpTransform, OpLabel) {
		t.Errorf("sibling NP ops = %v", opKinds(p))
	}
	p, _ = Build(b, JOP)
	if !eqKinds(opKinds(p), OpGetJoined, OpTransform, OpLabel) {
		t.Errorf("sibling JOP ops = %v", opKinds(p))
	}
	p, _ = Build(b, POP)
	if !eqKinds(opKinds(p), OpGetPivoted, OpTransform, OpLabel) {
		t.Errorf("sibling POP ops = %v", opKinds(p))
	}

	b, _ = bind(t, pastStmt)
	p, _ = Build(b, NP)
	if !eqKinds(opKinds(p), OpGet, OpGet, OpClientPivot, OpTransform, OpProject, OpClientJoin, OpTransform, OpLabel) {
		t.Errorf("past NP ops = %v", opKinds(p))
	}
	p, _ = Build(b, JOP)
	if !eqKinds(opKinds(p), OpGetMultiplied, OpClientPivot, OpTransform, OpProject, OpReplaceSlice, OpTransform, OpLabel) {
		t.Errorf("past JOP ops = %v", opKinds(p))
	}
	p, _ = Build(b, POP)
	if !eqKinds(opKinds(p), OpGetPivoted, OpTransform, OpTransform, OpLabel) {
		t.Errorf("past POP ops = %v", opKinds(p))
	}
}

func TestPhaseAttribution(t *testing.T) {
	// Figure 4 accounting: NP times get C and get B separately and the
	// join as Join; JOP and POP account the single engine call as get C+B;
	// regression is Trans.; the using clause is Comp.
	b, _ := bind(t, pastStmt)
	np, _ := Build(b, NP)
	var phases []Phase
	for _, op := range np.Ops {
		phases = append(phases, op.Phase)
	}
	want := []Phase{PhaseGetC, PhaseGetB, PhaseTransform, PhaseTransform, PhaseTransform, PhaseJoin, PhaseCompare, PhaseLabel}
	for i := range want {
		if phases[i] != want[i] {
			t.Errorf("NP past phase %d = %v, want %v", i, phases[i], want[i])
		}
	}
	pop, _ := Build(b, POP)
	if pop.Ops[0].Phase != PhaseGetCB {
		t.Errorf("POP first phase = %v, want GetC+B", pop.Ops[0].Phase)
	}
}

func TestExplainMentionsOperators(t *testing.T) {
	b, _ := bind(t, pastStmt)
	for _, s := range Strategies() {
		p, err := Build(b, s)
		if err != nil {
			t.Fatal(err)
		}
		out := p.Explain()
		if !strings.Contains(out, s.String()) {
			t.Errorf("%v explain lacks strategy name:\n%s", s, out)
		}
		if !strings.Contains(out, "label") {
			t.Errorf("%v explain lacks labeling step:\n%s", s, out)
		}
	}
	bs, _ := bind(t, siblingStmt)
	p, _ := Build(bs, POP)
	if !strings.Contains(p.Explain(), "⊞") {
		t.Errorf("POP sibling explain lacks pivot symbol:\n%s", p.Explain())
	}
}

func TestQueryPredicateReplacement(t *testing.T) {
	b, _ := bind(t, siblingStmt)
	p, err := Build(b, NP)
	if err != nil {
		t.Fatal(err)
	}
	qb := p.Ops[1].Query
	dict := b.Schema.Dict(b.Bench.SliceLevel)
	found := false
	for _, pred := range qb.Preds {
		if pred.Level == b.Bench.SliceLevel {
			found = true
			if len(pred.Members) != 1 || dict.Name(pred.Members[0]) != "France" {
				t.Errorf("benchmark slice predicate = %v", pred)
			}
		}
	}
	if !found {
		t.Error("benchmark query lacks the sibling slice predicate")
	}
	// POP covers both slices in one predicate.
	p, _ = Build(b, POP)
	for _, pred := range p.Ops[0].Query.Preds {
		if pred.Level == b.Bench.SliceLevel && len(pred.Members) != 2 {
			t.Errorf("POP slice predicate has %d members, want 2", len(pred.Members))
		}
	}
}

func TestPastQueryCoversPastSlices(t *testing.T) {
	b, _ := bind(t, pastStmt)
	if len(b.Bench.PastMembers) != 4 {
		t.Fatalf("bound %d past members, want 4", len(b.Bench.PastMembers))
	}
	dict := b.Schema.Dict(b.Bench.SliceLevel)
	wantMonths := []string{"1997-03", "1997-04", "1997-05", "1997-06"}
	for i, id := range b.Bench.PastMembers {
		if dict.Name(id) != wantMonths[i] {
			t.Errorf("past member %d = %s, want %s", i, dict.Name(id), wantMonths[i])
		}
	}
	p, _ := Build(b, POP)
	for _, pred := range p.Ops[0].Query.Preds {
		if pred.Level == b.Bench.SliceLevel && len(pred.Members) != 5 {
			t.Errorf("POP past predicate has %d members, want 5 (4 past + target)", len(pred.Members))
		}
	}
}

func TestStrategyString(t *testing.T) {
	if NP.String() != "NP" || JOP.String() != "JOP" || POP.String() != "POP" {
		t.Error("strategy names wrong")
	}
	for p := Phase(0); p < NumPhases; p++ {
		if strings.HasPrefix(p.String(), "Phase(") {
			t.Errorf("phase %d has no name", int(p))
		}
	}
}

const ancestorStmt = `with SALES by product, country assess quantity
	against ancestor type using ratio(quantity, benchmark.quantity)
	labels quartiles`

func TestAncestorPlanShapes(t *testing.T) {
	b, _ := bind(t, ancestorStmt)
	p, err := Build(b, NP)
	if err != nil {
		t.Fatal(err)
	}
	if !eqKinds(opKinds(p), OpGet, OpGet, OpClientRollupJoin, OpTransform, OpLabel) {
		t.Errorf("ancestor NP ops = %v", opKinds(p))
	}
	if !strings.Contains(p.Explain(), "roll-up join") {
		t.Errorf("explain:\n%s", p.Explain())
	}
	p, err = Build(b, JOP)
	if err != nil {
		t.Fatal(err)
	}
	if !eqKinds(opKinds(p), OpGetRollupJoined, OpTransform, OpLabel) {
		t.Errorf("ancestor JOP ops = %v", opKinds(p))
	}
	if !strings.Contains(p.Explain(), "engine-side roll-up join") {
		t.Errorf("explain:\n%s", p.Explain())
	}
	// The benchmark query replaces the child level with the ancestor.
	qb := p.Ops[0].QueryB
	typeRef, _ := b.Schema.FindLevel("type")
	if qb.Group.PosOf(typeRef) < 0 {
		t.Errorf("benchmark group %v lacks the ancestor level", qb.Group)
	}
	if _, err := Build(b, POP); err == nil {
		t.Error("POP accepted for ancestor")
	}
}

func TestExplainDescribesEveryOp(t *testing.T) {
	// Every op kind produced by any plan must describe itself without
	// falling back to "?".
	stmts := []string{constantStmt, externalStmt, siblingStmt, pastStmt, ancestorStmt}
	for _, stmt := range stmts {
		b, _ := bind(t, stmt)
		for _, s := range Strategies() {
			if !Feasible(s, b.Bench.Kind) {
				continue
			}
			p, err := Build(b, s)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(p.Explain(), "?") {
				t.Errorf("%v plan for %s has an undescribed op:\n%s", s, stmt, p.Explain())
			}
		}
	}
}

func TestCostEstimateAllBenchmarks(t *testing.T) {
	// The cost model must produce finite positive costs for every
	// feasible (benchmark, strategy) pair.
	stmts := []string{constantStmt, externalStmt, siblingStmt, pastStmt, ancestorStmt}
	for _, stmt := range stmts {
		b, e := bind(t, stmt)
		for _, s := range Strategies() {
			if !Feasible(s, b.Bench.Kind) {
				continue
			}
			p, err := Build(b, s)
			if err != nil {
				t.Fatal(err)
			}
			c := Estimate(p, e)
			if c <= 0 || c != c {
				t.Errorf("%v %s: cost %f", s, stmt, c)
			}
		}
	}
}
