package plan

import (
	"strings"
	"testing"

	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/mdm"
	"github.com/assess-olap/assess/internal/parser"
	"github.com/assess-olap/assess/internal/sales"
	"github.com/assess-olap/assess/internal/semantic"
)

// costSession builds an engine with and without materialized views for
// cost-model tests.
func costSession(t *testing.T, materialize bool) (*engine.Engine, *semantic.Binder) {
	t.Helper()
	ds := sales.Generate(20_000, 41)
	e := engine.New()
	if err := e.Register("SALES", ds.Fact); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("SALES_TARGET", ds.External); err != nil {
		t.Fatal(err)
	}
	if materialize {
		for _, levels := range [][]string{{"product", "country"}, {"month", "store"}} {
			g := mdm.MustGroupBy(ds.Schema, levels...)
			if err := e.Materialize("SALES", g); err != nil {
				t.Fatal(err)
			}
		}
	}
	return e, semantic.NewBinder(e)
}

func boundFor(t *testing.T, bd *semantic.Binder, stmt string) *semantic.Bound {
	t.Helper()
	st, err := parser.Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bd.Bind(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCostOrderingSibling(t *testing.T) {
	e, bd := costSession(t, true)
	b := boundFor(t, bd, siblingStmt)
	costs := map[Strategy]float64{}
	for _, s := range []Strategy{NP, JOP, POP} {
		p, err := Build(b, s)
		if err != nil {
			t.Fatal(err)
		}
		costs[s] = Estimate(p, e)
	}
	if !(costs[POP] < costs[JOP] && costs[JOP] < costs[NP]) {
		t.Errorf("sibling cost ordering = NP %.0f, JOP %.0f, POP %.0f; want POP < JOP < NP",
			costs[NP], costs[JOP], costs[POP])
	}
}

func TestCostViewsCheapenGets(t *testing.T) {
	eView, bdView := costSession(t, true)
	eScan, bdScan := costSession(t, false)
	bv := boundFor(t, bdView, siblingStmt)
	bs := boundFor(t, bdScan, siblingStmt)
	pv, _ := Build(bv, NP)
	ps, _ := Build(bs, NP)
	if Estimate(pv, eView) >= Estimate(ps, eScan) {
		t.Errorf("materialized views did not lower the estimated cost: %f vs %f",
			Estimate(pv, eView), Estimate(ps, eScan))
	}
}

func TestChooseByCost(t *testing.T) {
	e, bd := costSession(t, true)
	cases := map[string]Strategy{
		siblingStmt:  POP,
		constantStmt: NP,
	}
	for stmt, want := range cases {
		b := boundFor(t, bd, stmt)
		p, err := ChooseByCost(b, e)
		if err != nil {
			t.Fatal(err)
		}
		if p.Strategy != want {
			t.Errorf("cost-based choice for %v benchmark = %v, want %v",
				b.Bench.Kind, p.Strategy, want)
		}
	}
	// External: JOP must beat NP (it transfers only the joined rows).
	b := boundFor(t, bd, externalStmt)
	p, err := ChooseByCost(b, e)
	if err != nil {
		t.Fatal(err)
	}
	if p.Strategy != JOP {
		t.Errorf("cost-based choice for external = %v, want JOP", p.Strategy)
	}
}

func TestExplainCosts(t *testing.T) {
	e, bd := costSession(t, true)
	b := boundFor(t, bd, siblingStmt)
	out := ExplainCosts(b, e)
	for _, want := range []string{"NP", "JOP", "POP", "units"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainCosts lacks %q:\n%s", want, out)
		}
	}
}

func TestEstimateCardBounds(t *testing.T) {
	e, bd := costSession(t, false)
	b := boundFor(t, bd, siblingStmt)
	q := targetQuery(b)
	c := estimateCard(q, e)
	if c < 1 {
		t.Errorf("cardinality estimate %f below 1", c)
	}
	if c > float64(e.FactRows("SALES")) {
		t.Errorf("cardinality estimate %f exceeds fact rows", c)
	}
}
