package plan

import (
	"fmt"
	"strings"

	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/mdm"
	"github.com/assess-olap/assess/internal/semantic"
)

// Cost-based plan selection (the paper's future work, Section 8:
// "investigate the relevant properties of our logical operators and
// develop a cost-based optimization strategy"). The model walks a plan's
// operations and charges abstract cost units per tuple touched:
// sequential input rows for gets (fact rows, or view cells when a
// materialized view covers the query), hash operations for joins and
// pivots, and a per-cell transfer charge at the engine/client cursor
// boundary. Cardinalities are estimated from dictionary sizes and
// predicate selectivities.

// Stats exposes the physical statistics the cost model needs; *engine.Engine
// implements it.
type Stats interface {
	// FactRows returns the cardinality of a detailed cube, or 0 if
	// unknown.
	FactRows(fact string) int
	// ViewCells returns the cardinality of the materialized view at
	// exactly the group-by set, if one exists.
	ViewCells(fact string, g mdm.GroupBy) (int, bool)
	// CoveringViewCells returns the cell count of the cheapest
	// materialized view that can answer the query through the roll-up
	// lattice — an exact group-by match or any finer covering view —
	// if one exists. The engine's aggregate navigator resolves queries
	// by the same rule, so Estimate charges a get the smallest covering
	// view instead of the fact table.
	CoveringViewCells(q engine.Query) (int, bool)
	// LevelCardinality returns |Dom(l)| for a level of the cube's schema,
	// or 0 if unknown.
	LevelCardinality(fact string, ref mdm.LevelRef) int
}

// Cost weights, in abstract units per tuple. Scanning is the baseline;
// hashing costs more than scanning; crossing the cursor boundary costs
// more than hashing (encode + decode + cell materialization).
const (
	wScan     = 1.0
	wHash     = 2.5
	wTransfer = 6.0
	wCompute  = 0.5
)

// Estimate returns the estimated cost of a plan in abstract units.
func Estimate(p *Plan, stats Stats) float64 {
	card := make(map[string]float64) // estimated |cube| per intermediate name
	var total float64
	for i := range p.Ops {
		op := &p.Ops[i]
		switch op.Kind {
		case OpGet:
			out := estimateCard(op.Query, stats)
			total += inputCost(op.Query, stats) + wTransfer*out
			card[op.Dst] = out
		case OpGetJoined:
			c := estimateCard(op.Query, stats)
			b := estimateCard(op.QueryB, stats)
			out := minf(c, b)
			if op.Outer {
				out = c
			}
			total += inputCost(op.Query, stats) + inputCost(op.QueryB, stats) +
				wHash*(c+b) + wTransfer*out
			card[op.Dst] = out
		case OpGetRollupJoined:
			c := estimateCard(op.Query, stats)
			b := estimateCard(op.QueryB, stats)
			total += inputCost(op.Query, stats) + inputCost(op.QueryB, stats) +
				wHash*(c+b) + wTransfer*c
			card[op.Dst] = c
		case OpGetMultiplied:
			c := estimateCard(op.Query, stats)
			b := estimateCard(op.QueryB, stats)
			out := c * float64(len(op.Members))
			total += inputCost(op.Query, stats) + inputCost(op.QueryB, stats) +
				wHash*(c+b) + wTransfer*out
			card[op.Dst] = out
		case OpGetPivoted:
			all := estimateCard(op.Query, stats)
			out := all / float64(len(op.Neighbors)+1)
			if fused(op.Query, stats) {
				// Pipelined view pivot: one pass, one hash per input cell.
				total += inputCost(op.Query, stats) + wHash*all + wTransfer*out
			} else {
				// Aggregate first, then pivot the materialized result.
				total += inputCost(op.Query, stats) + wHash*all + wHash*all + wTransfer*out
			}
			card[op.Dst] = out
		case OpClientJoin:
			a, b := card[op.SrcA], card[op.SrcB]
			out := minf(a, b)
			if op.Outer {
				out = a
			}
			total += wHash * (a + b)
			card[op.Dst] = out
		case OpClientRollupJoin:
			a, b := card[op.SrcA], card[op.SrcB]
			total += wHash * (a + b)
			card[op.Dst] = a
		case OpClientPivot:
			src := card[op.SrcA]
			total += wHash * src
			card[op.Dst] = src / float64(len(op.Neighbors)+1)
		case OpProject:
			card[op.Dst] = card[op.SrcA]
		case OpReplaceSlice:
			total += wCompute * card[op.SrcA]
			card[op.Dst] = card[op.SrcA]
		case OpTransform:
			total += wCompute * card[op.Dst]
		case OpLabel:
			total += wCompute * card[op.Dst]
		}
	}
	return total
}

// ChooseByCost builds all feasible plans for the bound statement and
// returns the one with the lowest estimated cost.
func ChooseByCost(b *semantic.Bound, stats Stats) (*Plan, error) {
	var best *Plan
	bestCost := 0.0
	for _, s := range Strategies() {
		if !Feasible(s, b.Bench.Kind) {
			continue
		}
		p, err := Build(b, s)
		if err != nil {
			return nil, err
		}
		c := Estimate(p, stats)
		if best == nil || c < bestCost {
			best, bestCost = p, c
		}
	}
	if best == nil {
		return nil, fmt.Errorf("plan: no feasible strategy")
	}
	return best, nil
}

// ExplainCosts renders the estimated cost of every feasible plan.
func ExplainCosts(b *semantic.Bound, stats Stats) string {
	var sb strings.Builder
	for _, s := range Strategies() {
		if !Feasible(s, b.Bench.Kind) {
			continue
		}
		p, err := Build(b, s)
		if err != nil {
			continue
		}
		fmt.Fprintf(&sb, "%-4v estimated cost %12.0f units\n", s, Estimate(p, stats))
	}
	return sb.String()
}

// inputCost is the sequential input side of a get: the cells of the
// smallest view covering the query through the roll-up lattice, or the
// full fact table.
func inputCost(q engine.Query, stats Stats) float64 {
	if n, ok := stats.CoveringViewCells(q); ok {
		return wScan * float64(n)
	}
	return wScan * float64(stats.FactRows(q.Fact))
}

// fused mirrors the engine's pivot-fusion rule: only an exact-group view
// pipelines the get+pivot in one pass (coarser covers are re-aggregated
// first, then pivoted from the materialized aggregate).
func fused(q engine.Query, stats Stats) bool {
	_, ok := stats.ViewCells(q.Fact, q.Group)
	return ok && viewCovers(q)
}

// viewCovers mirrors the engine's exact-match rule: every predicate
// level must be derivable from the group-by coordinates.
func viewCovers(q engine.Query) bool {
	for _, p := range q.Preds {
		pos := q.Group.Pos(p.Level.Hier)
		if pos < 0 || q.Group[pos].Level > p.Level.Level {
			return false
		}
	}
	return true
}

// estimateCard estimates |C| of a cube query: the product of the
// group-by level cardinalities, scaled by predicate selectivities, and
// bounded by the (predicate-scaled) input cardinality.
func estimateCard(q engine.Query, stats Stats) float64 {
	sel := 1.0
	for _, p := range q.Preds {
		dom := stats.LevelCardinality(q.Fact, p.Level)
		if dom > 0 {
			sel *= float64(len(p.Members)) / float64(dom)
		}
	}
	groups := 1.0
	for _, ref := range q.Group {
		if dom := stats.LevelCardinality(q.Fact, ref); dom > 0 {
			groups *= float64(dom)
		}
	}
	rows := float64(stats.FactRows(q.Fact)) * sel
	return minf(maxf(groups*sel, 1), maxf(rows, 1))
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
