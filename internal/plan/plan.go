// Package plan builds executable plans for bound assess statements: the
// Naive Plan (NP), the Join-Optimized Plan (JOP), and the Pivot-Optimized
// Plan (POP) of Section 5.2. A plan is a sequence of operations over
// named intermediate cubes; each operation is tagged with the execution
// phase it is accounted to, reproducing the breakdown of Figure 4 (get C,
// get B, get C+B, transform, join, comparison, label).
//
// The three plan shapes are the outcome of the rewrite rules of Section
// 5.1: JOP applies P2 (pushing the join through cell transformations) so
// that the subexpression C ⋈ B can be evaluated by the engine, and POP
// applies P3 (replacing the join of slices of one cube with a pivot of a
// single get). The rules themselves are verified as algebraic
// equivalences in the package tests.
package plan

import (
	"fmt"
	"strings"

	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/mdm"
	"github.com/assess-olap/assess/internal/parser"
	"github.com/assess-olap/assess/internal/semantic"
)

// Strategy enumerates the execution strategies of Section 5.2.
type Strategy int

// The three plan strategies.
const (
	NP Strategy = iota
	JOP
	POP
)

// String names the strategy as in the paper.
func (s Strategy) String() string {
	switch s {
	case NP:
		return "NP"
	case JOP:
		return "JOP"
	case POP:
		return "POP"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Strategies lists all strategies in paper order.
func Strategies() []Strategy { return []Strategy{NP, JOP, POP} }

// Feasible reports whether the strategy applies to a benchmark kind
// (Section 5.2): JOP needs a join to push (everything but constant), POP
// needs multiple slices of a single cube (sibling and past only).
func Feasible(s Strategy, kind parser.BenchmarkKind) bool {
	switch s {
	case NP:
		return true
	case JOP:
		return kind != parser.BenchConstant
	case POP:
		return kind == parser.BenchSibling || kind == parser.BenchPast
	}
	return false
}

// ancestorBenchQuery derives the benchmark query of an ancestor
// benchmark: the target query re-grouped with the child level replaced
// by the ancestor level.
func ancestorBenchQuery(b *semantic.Bound, qc engine.Query) engine.Query {
	qb := qc
	group := make(mdm.GroupBy, len(qc.Group))
	copy(group, qc.Group)
	for i, ref := range group {
		if ref == b.Bench.ChildLevel {
			group[i] = b.Bench.AncestorLevel
		}
	}
	qb.Group = group
	qb.Measures = []int{b.Measure}
	return qb
}

// Phase is one bucket of the Figure 4 execution-time breakdown.
type Phase int

// The breakdown phases.
const (
	PhaseGetC Phase = iota
	PhaseGetB
	PhaseGetCB
	PhaseTransform
	PhaseJoin
	PhaseCompare
	PhaseLabel
	NumPhases
)

// String names the phase as in Figure 4.
func (p Phase) String() string {
	switch p {
	case PhaseGetC:
		return "Get C"
	case PhaseGetB:
		return "Get B"
	case PhaseGetCB:
		return "Get C+B"
	case PhaseTransform:
		return "Trans."
	case PhaseJoin:
		return "Join"
	case PhaseCompare:
		return "Comp."
	case PhaseLabel:
		return "Label"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// OpKind enumerates plan operations.
type OpKind int

// Plan operation kinds. Get* operations are pushed to the engine (the
// "SQL side"); Client* operations run in client memory on transferred
// cubes; Transform evaluates a bound expression into a new column; Label
// applies the labeling function.
const (
	OpGet OpKind = iota
	OpGetJoined
	OpGetPivoted
	OpGetMultiplied
	OpGetRollupJoined
	OpClientJoin
	OpClientPivot
	OpClientRollupJoin
	OpProject
	OpReplaceSlice
	OpTransform
	OpLabel
)

// Op is one plan operation. The fields used depend on Kind.
type Op struct {
	Kind  OpKind
	Phase Phase
	Dst   string // name of the produced (or mutated) cube
	SrcA  string // primary input cube
	SrcB  string // secondary input cube (client join)

	Query  engine.Query // OpGet*, target query
	QueryB engine.Query // OpGetJoined / OpGetMultiplied, benchmark query

	On        []mdm.LevelRef // join levels
	Alias     string         // prefix for benchmark measures
	Outer     bool           // left-outer join (assess*)
	Level     mdm.LevelRef   // pivot / multiply / replace-slice level
	Ref       int32          // pivot reference member / replacement member
	Members   []int32        // multiply-join slice members
	Neighbors []int32        // pivot neighbor slices (nil infers from data)
	Strict    bool           // pivot strictness (drop cells missing a slice)
	Rename    func(measure, member string) string

	Expr   semantic.Expr // OpTransform
	OutCol string        // OpTransform output column

	ProjKeep   []string          // OpProject: columns to keep
	ProjRename map[string]string // OpProject: old → new column names

	LabelCol string // OpLabel input column

	note string // for Describe
}

// Plan is an executable operation sequence for one statement.
type Plan struct {
	Strategy Strategy
	Bound    *semantic.Bound
	Ops      []Op
	// Result names the cube holding the final result, and ComparisonCol
	// its comparison-value column.
	Result        string
	ComparisonCol string
}

// ComparisonColumn is the name given to the value produced by the using
// clause.
const ComparisonColumn = "comparison"

const predColumn = "__pred"

// Build constructs the plan of the given strategy for a bound statement.
func Build(b *semantic.Bound, s Strategy) (*Plan, error) {
	if !Feasible(s, b.Bench.Kind) {
		return nil, fmt.Errorf("plan: %v is not feasible for %v benchmarks (Section 5.2)", s, b.Bench.Kind)
	}
	p := &Plan{Strategy: s, Bound: b, Result: "C", ComparisonCol: ComparisonColumn}
	switch b.Bench.Kind {
	case parser.BenchConstant:
		p.buildConstant(b)
	case parser.BenchExternal:
		p.buildExternal(b, s)
	case parser.BenchSibling:
		p.buildSibling(b, s)
	case parser.BenchPast:
		p.buildPast(b, s)
	case parser.BenchAncestor:
		p.buildAncestor(b, s)
	}
	p.finish(b)
	return p, nil
}

// targetQuery is the get of the target cube C.
func targetQuery(b *semantic.Bound) engine.Query {
	return engine.Query{Fact: b.Fact, Group: b.Group, Preds: b.Preds, Measures: b.Fetch}
}

// replacePred returns preds with the predicate on level replaced by one
// on the given members.
func replacePred(preds []engine.Predicate, level mdm.LevelRef, members []int32) []engine.Predicate {
	out := make([]engine.Predicate, 0, len(preds)+1)
	replaced := false
	for _, p := range preds {
		if p.Level == level {
			out = append(out, engine.Predicate{Level: level, Members: members})
			replaced = true
			continue
		}
		out = append(out, p)
	}
	if !replaced {
		out = append(out, engine.Predicate{Level: level, Members: members})
	}
	return out
}

func (p *Plan) buildConstant(b *semantic.Bound) {
	p.Ops = append(p.Ops,
		Op{Kind: OpGet, Phase: PhaseGetC, Dst: "C", Query: targetQuery(b)},
		Op{
			Kind: OpTransform, Phase: PhaseCompare, Dst: "C",
			Expr:   constExpr(b.Bench.Constant),
			OutCol: b.BenchColumn(),
			note:   fmt.Sprintf("benchmark constant %g", b.Bench.Constant),
		},
	)
}

// constExpr broadcasts a constant as a column.
func constExpr(v float64) semantic.Expr { return &semantic.NumberExpr{Value: v} }

func (p *Plan) buildExternal(b *semantic.Bound, s Strategy) {
	qc := targetQuery(b)
	qb := engine.Query{
		Fact:     b.Bench.ExtFact,
		Group:    b.Group,
		Measures: []int{b.Bench.ExtMeasureIdx},
	}
	on := append([]mdm.LevelRef(nil), b.Group...)
	switch s {
	case NP:
		p.Ops = append(p.Ops,
			Op{Kind: OpGet, Phase: PhaseGetC, Dst: "C", Query: qc},
			Op{Kind: OpGet, Phase: PhaseGetB, Dst: "B", Query: qb},
			Op{Kind: OpClientJoin, Phase: PhaseJoin, Dst: "C", SrcA: "C", SrcB: "B",
				On: on, Alias: "benchmark.", Outer: b.Star},
		)
	case JOP:
		p.Ops = append(p.Ops,
			Op{Kind: OpGetJoined, Phase: PhaseGetCB, Dst: "C", Query: qc, QueryB: qb,
				On: on, Alias: "benchmark.", Outer: b.Star},
		)
	}
}

func (p *Plan) buildSibling(b *semantic.Bound, s Strategy) {
	qc := targetQuery(b)
	level := b.Bench.SliceLevel
	qb := qc
	qb.Preds = replacePred(b.Preds, level, []int32{b.Bench.SiblingMember})
	qb.Measures = []int{b.Measure}
	on := b.Group.Without(level)
	m := b.MeasureName()
	bench := b.BenchColumn()
	rename := func(measure, member string) string {
		if measure == m {
			return bench
		}
		return measure + "@" + member
	}
	switch s {
	case NP:
		p.Ops = append(p.Ops,
			Op{Kind: OpGet, Phase: PhaseGetC, Dst: "C", Query: qc},
			Op{Kind: OpGet, Phase: PhaseGetB, Dst: "B", Query: qb},
			Op{Kind: OpClientJoin, Phase: PhaseJoin, Dst: "C", SrcA: "C", SrcB: "B",
				On: on, Alias: "benchmark.", Outer: b.Star},
		)
	case JOP:
		p.Ops = append(p.Ops,
			Op{Kind: OpGetJoined, Phase: PhaseGetCB, Dst: "C", Query: qc, QueryB: qb,
				On: on, Alias: "benchmark.", Outer: b.Star},
		)
	case POP:
		qAll := qc
		qAll.Preds = replacePred(b.Preds, level,
			[]int32{b.Bench.SliceMember, b.Bench.SiblingMember})
		p.Ops = append(p.Ops,
			Op{Kind: OpGetPivoted, Phase: PhaseGetCB, Dst: "C", Query: qAll,
				Level: level, Ref: b.Bench.SliceMember,
				Neighbors: []int32{b.Bench.SiblingMember},
				Strict:    !b.Star, Rename: rename},
		)
	}
}

func (p *Plan) buildPast(b *semantic.Bound, s Strategy) {
	qc := targetQuery(b)
	level := b.Bench.SliceLevel
	past := b.Bench.PastMembers
	qb := qc
	qb.Preds = replacePred(b.Preds, level, past)
	qb.Measures = []int{b.Measure}
	on := b.Group.Without(level)
	m := b.MeasureName()
	bench := b.BenchColumn()
	dict := b.Schema.Dict(level)
	latest := past[len(past)-1]

	switch s {
	case NP:
		if b.Star {
			// assess*: anchor the client pivot on the target member, not on
			// the latest past slice. A pivot anchored on the latest slice
			// emits no row for a coordinate whose latest past slice is
			// empty, dropping the partial series that the NaN-tolerant
			// predictors (and the JOP/POP shapes of this plan) still
			// predict from.
			qbs := qb
			qbs.Preds = replacePred(b.Preds, level,
				append(append([]int32(nil), past...), b.Bench.SliceMember))
			series := make([]semantic.Expr, 0, len(past))
			for _, id := range past {
				series = append(series, &semantic.ColumnExpr{Column: m + "@" + dict.Name(id)})
			}
			p.Ops = append(p.Ops,
				Op{Kind: OpGet, Phase: PhaseGetC, Dst: "C", Query: qc},
				Op{Kind: OpGet, Phase: PhaseGetB, Dst: "B", Query: qbs},
				Op{Kind: OpClientPivot, Phase: PhaseTransform, Dst: "E", SrcA: "B",
					Level: level, Ref: b.Bench.SliceMember, Neighbors: past, Strict: false},
				Op{Kind: OpTransform, Phase: PhaseTransform, Dst: "E",
					Expr: regressionExpr(b, series), OutCol: predColumn, note: "regression"},
				Op{Kind: OpProject, Phase: PhaseTransform, Dst: "E", SrcA: "E",
					ProjKeep:   []string{predColumn},
					ProjRename: map[string]string{predColumn: m},
					note:       "project prediction as " + m},
				Op{Kind: OpClientJoin, Phase: PhaseJoin, Dst: "C", SrcA: "C", SrcB: "E",
					On: on, Alias: "benchmark.", Outer: true},
			)
			break
		}
		// Paper Example 4.5 (past plan): get C, get B, pivot B on the
		// latest past slice, regress, join, then compare and label.
		series := make([]semantic.Expr, 0, len(past))
		for _, id := range past[:len(past)-1] {
			series = append(series, &semantic.ColumnExpr{Column: m + "@" + dict.Name(id)})
		}
		series = append(series, &semantic.ColumnExpr{Column: m})
		p.Ops = append(p.Ops,
			Op{Kind: OpGet, Phase: PhaseGetC, Dst: "C", Query: qc},
			Op{Kind: OpGet, Phase: PhaseGetB, Dst: "B", Query: qb},
			Op{Kind: OpClientPivot, Phase: PhaseTransform, Dst: "E", SrcA: "B",
				Level: level, Ref: latest, Neighbors: past[:len(past)-1], Strict: true},
			Op{Kind: OpTransform, Phase: PhaseTransform, Dst: "E",
				Expr: regressionExpr(b, series), OutCol: predColumn, note: "regression"},
			Op{Kind: OpProject, Phase: PhaseTransform, Dst: "E", SrcA: "E",
				ProjKeep:   []string{predColumn},
				ProjRename: map[string]string{predColumn: m},
				note:       "project prediction as " + m},
			Op{Kind: OpClientJoin, Phase: PhaseJoin, Dst: "C", SrcA: "C", SrcB: "E",
				On: on, Alias: "benchmark.", Outer: false},
		)
	case JOP:
		// Property P2: the join C ⋈ B is pushed to the engine before the
		// pivot and regression transformations (Example 5.3).
		series := make([]semantic.Expr, 0, len(past))
		for _, id := range past[:len(past)-1] {
			series = append(series, &semantic.ColumnExpr{Column: bench + "@" + dict.Name(id)})
		}
		series = append(series, &semantic.ColumnExpr{Column: bench})
		keep := append([]string(nil), b.Columns...)
		keep = append(keep, predColumn)
		renames := map[string]string{predColumn: bench}
		p.Ops = append(p.Ops,
			Op{Kind: OpGetMultiplied, Phase: PhaseGetCB, Dst: "D", Query: qc, QueryB: qb,
				Level: level, Members: past, Alias: "benchmark.", Outer: b.Star},
			Op{Kind: OpClientPivot, Phase: PhaseTransform, Dst: "E", SrcA: "D",
				Level: level, Ref: latest, Neighbors: past[:len(past)-1], Strict: !b.Star},
			Op{Kind: OpTransform, Phase: PhaseTransform, Dst: "E",
				Expr: regressionExpr(b, series), OutCol: predColumn, note: "regression"},
			Op{Kind: OpProject, Phase: PhaseTransform, Dst: "C", SrcA: "E",
				ProjKeep: keep, ProjRename: renames,
				note: "project prediction as " + bench},
			Op{Kind: OpReplaceSlice, Phase: PhaseTransform, Dst: "C", SrcA: "C",
				Level: level, Ref: b.Bench.SliceMember},
		)
	case POP:
		// Property P3: one get covering the target and all past slices,
		// pivoted engine-side on the target member (Example 5.4).
		qAll := qc
		qAll.Preds = replacePred(b.Preds, level, append(append([]int32(nil), past...), b.Bench.SliceMember))
		series := make([]semantic.Expr, 0, len(past))
		for _, id := range past {
			series = append(series, &semantic.ColumnExpr{Column: m + "@" + dict.Name(id)})
		}
		p.Ops = append(p.Ops,
			Op{Kind: OpGetPivoted, Phase: PhaseGetCB, Dst: "C", Query: qAll,
				Level: level, Ref: b.Bench.SliceMember,
				Neighbors: past, Strict: !b.Star},
			Op{Kind: OpTransform, Phase: PhaseTransform, Dst: "C",
				Expr: regressionExpr(b, series), OutCol: bench, note: "regression"},
		)
	}
}

func (p *Plan) buildAncestor(b *semantic.Bound, s Strategy) {
	qc := targetQuery(b)
	qb := ancestorBenchQuery(b, qc)
	switch s {
	case NP:
		p.Ops = append(p.Ops,
			Op{Kind: OpGet, Phase: PhaseGetC, Dst: "C", Query: qc},
			Op{Kind: OpGet, Phase: PhaseGetB, Dst: "B", Query: qb},
			Op{Kind: OpClientRollupJoin, Phase: PhaseJoin, Dst: "C", SrcA: "C", SrcB: "B",
				Alias: "benchmark.", Outer: b.Star},
		)
	case JOP:
		p.Ops = append(p.Ops,
			Op{Kind: OpGetRollupJoined, Phase: PhaseGetCB, Dst: "C", Query: qc, QueryB: qb,
				Alias: "benchmark.", Outer: b.Star},
		)
	}
}

// regressionExpr builds the prediction call over the chronological series
// columns, using the bound statement's predictor (OLS regression by
// default, Section 4.3).
func regressionExpr(b *semantic.Bound, series []semantic.Expr) semantic.Expr {
	return &semantic.CallExpr{Fn: b.Predictor, Args: series}
}

// finish appends the comparison and labeling steps shared by all plans.
func (p *Plan) finish(b *semantic.Bound) {
	p.Ops = append(p.Ops,
		Op{Kind: OpTransform, Phase: PhaseCompare, Dst: p.Result,
			Expr: b.Using, OutCol: ComparisonColumn, note: "comparison (using clause)"},
		Op{Kind: OpLabel, Phase: PhaseLabel, Dst: p.Result, LabelCol: ComparisonColumn},
	)
}

// DescribeOp renders the i-th operation of the plan (as Explain does),
// for per-operation instrumentation.
func (p *Plan) DescribeOp(i int) string {
	return p.Ops[i].describe(p)
}

// Explain renders the plan as a numbered list of logical operations.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v plan for %v benchmark:\n", p.Strategy, p.Bound.Bench.Kind)
	for i, op := range p.Ops {
		fmt.Fprintf(&sb, "  %d. [%s] %s\n", i+1, op.Phase, op.describe(p))
	}
	return sb.String()
}

func (op *Op) describe(p *Plan) string {
	b := p.Bound
	switch op.Kind {
	case OpGet:
		return fmt.Sprintf("get %s → %s%s", describeQuery(b, op.Query), op.Dst, noteSuffix(op))
	case OpGetJoined:
		return fmt.Sprintf("get %s ⋈ %s (engine-side join) → %s",
			describeQuery(b, op.Query), describeQuery(b, op.QueryB), op.Dst)
	case OpGetPivoted:
		return fmt.Sprintf("get %s, pivot ⊞ on %s (engine-side) → %s",
			describeQuery(b, op.Query), b.Schema.LevelName(op.Level), op.Dst)
	case OpGetMultiplied:
		return fmt.Sprintf("get %s ⋈ %s (engine-side 1:n join over %d slices) → %s",
			describeQuery(b, op.Query), describeQuery(b, op.QueryB), len(op.Members), op.Dst)
	case OpGetRollupJoined:
		return fmt.Sprintf("get %s ⋈rup %s (engine-side roll-up join) → %s",
			describeQuery(b, op.Query), describeQuery(b, op.QueryB), op.Dst)
	case OpClientRollupJoin:
		return fmt.Sprintf("%s ⋈rup %s (client-side roll-up join) → %s", op.SrcA, op.SrcB, op.Dst)
	case OpClientJoin:
		kind := "⋈"
		if op.Outer {
			kind = "*⟕"
		}
		return fmt.Sprintf("%s %s %s (client-side) → %s", op.SrcA, kind, op.SrcB, op.Dst)
	case OpClientPivot:
		return fmt.Sprintf("⊞ pivot %s on %s (client-side) → %s",
			op.SrcA, b.Schema.LevelName(op.Level), op.Dst)
	case OpProject:
		return fmt.Sprintf("π project %s → %s%s", op.SrcA, op.Dst, noteSuffix(op))
	case OpReplaceSlice:
		return fmt.Sprintf("map coordinates of %s to slice %s = %s",
			op.SrcA, b.Schema.LevelName(op.Level), b.Schema.Dict(op.Level).Name(op.Ref))
	case OpTransform:
		kind := "⊟"
		if exprIsHolistic(op.Expr) {
			kind = "⊡"
		}
		return fmt.Sprintf("%s transform %s: %s%s", kind, op.Dst, op.OutCol, noteSuffix(op))
	case OpLabel:
		return fmt.Sprintf("label %s(%s) on %s", b.Labeler.Name(), op.LabelCol, op.Dst)
	}
	return "?"
}

func noteSuffix(op *Op) string {
	if op.note == "" {
		return ""
	}
	return " (" + op.note + ")"
}

func describeQuery(b *semantic.Bound, q engine.Query) string {
	var preds []string
	var schema = b.Schema
	if q.Fact == b.Bench.ExtFact && b.Bench.ExtSchema != nil {
		schema = b.Bench.ExtSchema
	}
	for _, p := range q.Preds {
		names := make([]string, len(p.Members))
		for i, m := range p.Members {
			names[i] = schema.Dict(p.Level).Name(m)
		}
		preds = append(preds, fmt.Sprintf("%s∈{%s}", schema.LevelName(p.Level), strings.Join(names, ",")))
	}
	sel := ""
	if len(preds) > 0 {
		sel = "; " + strings.Join(preds, ", ")
	}
	return fmt.Sprintf("[(%s, %s%s)]", q.Fact, q.Group.String(schema), sel)
}

// exprIsHolistic reports whether the expression needs a holistic scan.
func exprIsHolistic(e semantic.Expr) bool {
	call, ok := e.(*semantic.CallExpr)
	if !ok {
		return false
	}
	if call.Fn.HolFn != nil {
		return true
	}
	for _, a := range call.Args {
		if exprIsHolistic(a) {
			return true
		}
	}
	return false
}
