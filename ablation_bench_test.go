// Ablation benchmarks for the design choices flagged in DESIGN.md §5:
// materialized views, the pipelined view→pivot evaluation, and the
// cursor-transfer boundary. Run with `go test -bench Ablation`.
package assess_test

import (
	"fmt"
	"testing"

	assess "github.com/assess-olap/assess"
	"github.com/assess-olap/assess/internal/experiments"
	"github.com/assess-olap/assess/internal/plan"
)

const ablationSibling = 2 // index of the Sibling intention
const ablationPast = 3    // index of the Past intention

// ablationEnv builds an SSB session, optionally without materialized
// views.
func ablationEnv(b *testing.B, materialize bool) *experiments.Env {
	b.Helper()
	sc := benchScale()
	env, err := experiments.Setup(sc, 42)
	if err != nil {
		b.Fatal(err)
	}
	if !materialize {
		// Rebuild without views.
		ds := assess.GenerateSSB(sc.SF, 42)
		s := assess.NewSession()
		if err := s.RegisterCube("LINEORDER", ds.Fact); err != nil {
			b.Fatal(err)
		}
		if err := s.RegisterCube("LINEORDER_BUDGET", ds.Budget); err != nil {
			b.Fatal(err)
		}
		env.Session = s
	}
	return env
}

// BenchmarkAblationMaterializedViews compares every feasible plan of the
// Sibling intention with and without materialized views: the views turn
// full fact scans into view filters, which is what makes the plans'
// transfer/join differences visible (EXPERIMENTS.md).
func BenchmarkAblationMaterializedViews(b *testing.B) {
	in := experiments.Intentions()[ablationSibling]
	if in.Name != "Sibling" {
		b.Fatal("intention order changed")
	}
	for _, materialized := range []bool{true, false} {
		name := "views-off"
		if materialized {
			name = "views-on"
		}
		env := ablationEnv(b, materialized)
		for _, strat := range []plan.Strategy{plan.NP, plan.POP} {
			b.Run(name+"/"+strat.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.Session.ExecWith(in.Statement, strat); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationPivotFusion compares the pipelined view→pivot path of
// POP against materializing the aggregate before pivoting (the same
// query, same view, fusion toggled).
func BenchmarkAblationPivotFusion(b *testing.B) {
	in := experiments.Intentions()[ablationPast]
	if in.Name != "Past" {
		b.Fatal("intention order changed")
	}
	env := ablationEnv(b, true)
	for _, fused := range []bool{true, false} {
		name := "fused"
		if !fused {
			name = "materialized"
		}
		b.Run(name, func(b *testing.B) {
			env.Session.Engine.SetPivotFusion(fused)
			defer env.Session.Engine.SetPivotFusion(true)
			for i := 0; i < b.N; i++ {
				if _, err := env.Session.ExecWith(in.Statement, plan.POP); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCostModel measures the planning overhead of
// cost-based selection against the fixed heuristic.
func BenchmarkAblationCostModel(b *testing.B) {
	env := ablationEnv(b, true)
	in := experiments.Intentions()[ablationSibling]
	b.Run("heuristic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.Session.Prepare(in.Statement); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cost-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := env.Session.PrepareCostBased(in.Statement)
			if err != nil {
				b.Fatal(err)
			}
			if p.Strategy != plan.POP {
				b.Fatalf("cost-based choice = %v, want POP", p.Strategy)
			}
		}
	})
}

// BenchmarkAblationPastWindow sweeps the past-benchmark window k: NP and
// JOP transfer and pivot k slices per cell, while POP's pipelined pivot
// grows only in its column count.
func BenchmarkAblationPastWindow(b *testing.B) {
	env := ablationEnv(b, true)
	for _, k := range []int{2, 4, 8, 16} {
		stmt := fmt.Sprintf(`with LINEORDER for month = '1998-06' by month, supplier
			assess revenue against past %d
			using ratio(revenue, benchmark.revenue)
			labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}`, k)
		for _, strat := range plan.Strategies() {
			b.Run(fmt.Sprintf("k=%d/%v", k, strat), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := env.Session.ExecWith(stmt, strat); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
