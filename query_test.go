package assess_test

import (
	"strings"
	"testing"

	assess "github.com/assess-olap/assess"
)

// TestGetStatement exercises the plain cube queries of the get operator
// (Example 2.7: fresh-fruit quantities by product and country in Italy).
func TestGetStatement(t *testing.T) {
	s := figureOneSession(t)
	stmt := `with SALES
		for type = 'Fresh Fruit', country = 'Italy'
		by product, country
		get quantity`
	if !assess.IsGetStatement(stmt) {
		t.Fatal("get statement not recognized")
	}
	qr, err := s.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Cube.Len() != 3 {
		t.Fatalf("|C| = %d, want 3", qr.Cube.Len())
	}
	out := qr.Render()
	for _, want := range []string{"Apple", "100", "Pear", "90", "Lemon", "30"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestGetStatementMultiMeasure(t *testing.T) {
	s := figureOneSession(t)
	qr, err := s.Query(`with SALES by country get quantity, storeSales, storeCost`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Cube.Names) != 3 {
		t.Errorf("measures = %v", qr.Cube.Names)
	}
}

func TestGetStatementErrors(t *testing.T) {
	s := figureOneSession(t)
	bad := []string{
		`with NOPE by product get quantity`,
		`with SALES by nosuch get quantity`,
		`with SALES by product get nosuch`,
		`with SALES by product get quantity, quantity`,
		`with SALES by product get quantity labels quartiles`, // trailing input
	}
	for _, stmt := range bad {
		if _, err := s.Query(stmt); err == nil {
			t.Errorf("accepted: %s", stmt)
		}
	}
	// Query rejects assess statements and Exec-side binding rejects gets.
	if _, err := s.Query(`with SALES by product assess quantity labels quartiles`); err == nil {
		t.Error("assess statement accepted by Query")
	}
	if _, err := s.Exec(`with SALES by product get quantity`); err == nil {
		t.Error("get statement accepted by Exec")
	}
	if assess.IsGetStatement(`with SALES by product assess quantity labels quartiles`) {
		t.Error("assess statement detected as get")
	}
}
