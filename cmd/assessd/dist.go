package main

import (
	"fmt"
	"net/http"
	"time"

	assess "github.com/assess-olap/assess"
	"github.com/assess-olap/assess/internal/dist"
	"github.com/assess-olap/assess/internal/mdm"
)

// distConfig groups the scatter-gather flags. Exactly one of three
// shapes is active: worker (serve one shard's partial-aggregate RPC),
// in-process cluster (-shards N without -shard-addrs), or remote
// coordinator (-shard-addrs).
type distConfig struct {
	worker     bool          // serve as a shard worker instead of a full API server
	shards     int           // shard count (worker: of the whole cluster; coordinator: in-process worker count)
	shardAddrs string        // comma-separated shard addresses, "|" separates replicas
	shardIndex int           // which shard this worker owns
	shardLevel string        // shard-by level name, "" = auto (largest base dict)
	timeout    time.Duration // per-shard scan deadline
	policy     string        // partial-result policy: fail or partial
}

func (c distConfig) active() bool { return c.worker || c.shards > 1 || c.shardAddrs != "" }

// shardLevelFor resolves the shard level for one fact's schema: the
// named level when -shard-level is set, else the automatic choice.
func shardLevelFor(s *assess.Schema, name string) (mdm.LevelRef, error) {
	if name == "" {
		return dist.AutoShardLevel(s), nil
	}
	ref, ok := s.FindLevel(name)
	if !ok {
		return mdm.LevelRef{}, fmt.Errorf("assessd: schema %s has no level %q to shard by", s.Name, name)
	}
	return ref, nil
}

// workerHandler turns the session into one shard of the cluster: every
// registered fact is split by the shard level and only slice
// cfg.shardIndex is kept, served over the compact partial-aggregate
// RPC (POST /dist/scan, /dist/append, GET /dist/stats, /healthz,
// /metrics).
func workerHandler(session *assess.Session, cfg distConfig) (http.Handler, error) {
	if cfg.shards < 1 {
		return nil, fmt.Errorf("assessd: -worker needs -shards >= 1, got %d", cfg.shards)
	}
	if cfg.shardIndex < 0 || cfg.shardIndex >= cfg.shards {
		return nil, fmt.Errorf("assessd: -shard-index %d out of range [0,%d)", cfg.shardIndex, cfg.shards)
	}
	w := dist.NewWorker()
	for _, name := range session.Engine.Facts() {
		f, _ := session.Engine.Fact(name)
		level, err := shardLevelFor(f.Schema, cfg.shardLevel)
		if err != nil {
			return nil, err
		}
		shards, err := dist.SplitFact(f, level, cfg.shards)
		if err != nil {
			return nil, fmt.Errorf("assessd: sharding %s: %w", name, err)
		}
		if err := w.Register(name, shards[cfg.shardIndex]); err != nil {
			return nil, err
		}
	}
	return w.Handler(), nil
}

// enableDistributed wires a scatter-gather coordinator onto the
// session: an in-process cluster of cfg.shards workers when no
// addresses are given, else HTTP clients for the configured shard
// address chains. The session keeps its full local copy of every fact
// for planning, views, and per-shard local fallback.
func enableDistributed(session *assess.Session, cfg distConfig) error {
	policy, err := dist.ParsePolicy(cfg.policy)
	if err != nil {
		return fmt.Errorf("assessd: %w", err)
	}
	coord := dist.NewCoordinator(session.Engine, dist.Config{
		ShardTimeout: cfg.timeout,
		Policy:       policy,
	})

	var (
		lc     *dist.LocalCluster
		chains [][]dist.ShardClient
	)
	if cfg.shardAddrs != "" {
		if chains, err = dist.ParseShardAddrs(cfg.shardAddrs); err != nil {
			return fmt.Errorf("assessd: %w", err)
		}
	} else {
		lc = dist.NewLocalCluster(cfg.shards)
	}

	for _, name := range session.Engine.Facts() {
		f, _ := session.Engine.Fact(name)
		level, err := shardLevelFor(f.Schema, cfg.shardLevel)
		if err != nil {
			return err
		}
		tableChains := chains
		if lc != nil {
			if err := lc.AddFact(name, f, level); err != nil {
				return fmt.Errorf("assessd: sharding %s: %w", name, err)
			}
			tableChains = lc.Clients()
		}
		if err := coord.AddTable(name, level, tableChains, true); err != nil {
			return err
		}
	}
	session.EnableDistributed(coord)
	return nil
}
