// Command assessd serves assess statements over HTTP/JSON for
// interactive analysis:
//
//	POST /assess   {"statement": "...", "plan": "best|cost|np|jop|pop"}
//	POST /explain  {"statement": "..."}
//	POST /validate {"statement": "..."}
//	POST /suggest  {"statement": "<partial>", "max": 3}
//	POST /query    {"statement": "with C by G get m"}
//	GET  /cubes
//	GET  /stats
//	GET  /metrics
//	GET  /healthz
//
// Every POST endpoint accepts ?trace=1 to return the query's span tree.
// With -debug-addr set, a second listener serves net/http/pprof,
// expvar (/debug/vars), and /metrics, kept off the serving port.
//
// Distribution: `-shards N` scatter-gathers every query over N
// in-process shard workers; `-shard-addrs` points at remote workers
// started with `-worker -shards N -shard-index I` (replicas joined
// with '|'). See docs/distribution.md.
//
// Usage:
//
//	assessd [-addr :8080] [-data sales|ssb] [-rows 50000] [-sf 0.01]
//	        [-seed 42] [-load cube.bin] [-store-dir DIR] [-resident]
//	        [-store-eager] [-store-gather-cutoff 0.25]
//	        [-worker] [-shards N] [-shard-index I] [-shard-addrs URLS]
//	        [-shard-level LEVEL] [-shard-timeout 2s] [-dist-policy fail|partial]
//	        [-parallel 0]
//	        [-dense-budget 1048576] [-morsel-size 65536]
//	        [-cache on|off] [-cache-mb 64]
//	        [-auto-views] [-view-mb 64]
//	        [-batch-window 500us] [-admit-slots 0] [-max-queue 256]
//	        [-latency-budget 2s] [-tenant-header X-Tenant]
//	        [-debug-addr :6060] [-slow-query-ms 500] [-slow-query-log path]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	assess "github.com/assess-olap/assess"
	"github.com/assess-olap/assess/internal/colstore"
	"github.com/assess-olap/assess/internal/engine"
	"github.com/assess-olap/assess/internal/obsv"
	"github.com/assess-olap/assess/internal/persist"
	"github.com/assess-olap/assess/internal/sched"
	"github.com/assess-olap/assess/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		data       = flag.String("data", "sales", "dataset: sales or ssb")
		rows       = flag.Int("rows", 50_000, "fact rows for the sales dataset")
		sf         = flag.Float64("sf", 0.01, "scale factor for the ssb dataset")
		seed       = flag.Int64("seed", 42, "generator seed")
		load       = flag.String("load", "", "serve a cube loaded from a file instead of generating one")
		storeDir   = flag.String("store-dir", "", "serve cubes from columnar segment directories (out-of-core; see ssbgen -out-dir)")
		resident   = flag.Bool("resident", false, "with -store-dir, load the segment directories fully into memory")
		storeEager = flag.Bool("store-eager", false,
			"with -store-dir, disable late materialization: decode every needed column in full (debug/compare)")
		storeGather = flag.Float64("store-gather-cutoff", -1,
			"with -store-dir, selectivity at or below which surviving rows are gather-decoded (0 disables, <0 = default)")
		parallel  = flag.Int("parallel", 1, "fact-scan parallelism (0 = all cores)")
		denseBudg = flag.Int("dense-budget", engine.DefaultDenseKeyBudget,
			"dense aggregation key-space budget in slots (0 = hash kernels only)")
		morsel    = flag.Int("morsel-size", engine.DefaultMorselSize, "fact-scan morsel size in rows")
		cache     = flag.String("cache", "on", "query-result cache: on or off")
		cacheMB   = flag.Int("cache-mb", 64, "query-result cache budget in MiB")
		autoViews = flag.Bool("auto-views", false, "adaptively materialize hot group-by sets as views")
		viewMB    = flag.Int("view-mb", 64, "auto-materialized view budget in MiB")
		batchWin  = flag.Duration("batch-window", 0,
			"shared-scan batching window (e.g. 500us); concurrent queries against one cube coalesce into a single scan; 0 disables")
		admitSlots = flag.Int("admit-slots", 0,
			"admission-control execution slots (0 = GOMAXPROCS; admission enabled when -max-queue or -latency-budget is set)")
		maxQueue = flag.Int("max-queue", 0,
			"admission queue depth before shedding with 429 (0 disables admission control unless -latency-budget is set)")
		latBudget = flag.Duration("latency-budget", 0,
			"shed load with 429 when the p99 completion estimate exceeds this budget (0 disables)")
		tenantHdr = flag.String("tenant-header", server.DefaultTenantHeader,
			"request header naming the tenant for fair admission queuing")
		worker = flag.Bool("worker", false,
			"serve as a shard worker: keep shard -shard-index of -shards and answer the partial-aggregate RPC instead of the full API")
		shards = flag.Int("shards", 0,
			"shard count: with -worker, the cluster size; without, spin up that many in-process shard workers and scatter-gather over them")
		shardAddrs = flag.String("shard-addrs", "",
			"comma-separated shard worker base URLs (replicas joined with '|'); scatter-gather over remote workers")
		shardIndex = flag.Int("shard-index", 0, "with -worker, which shard of -shards this process owns")
		shardLevel = flag.String("shard-level", "",
			"level name to hash-shard facts by (default: the base level with the largest dictionary)")
		shardTimeout = flag.Duration("shard-timeout", 0,
			"per-shard scan deadline before re-dispatching to a replica or the local copy (0 = default)")
		distPolicy = flag.String("dist-policy", "fail",
			"result policy when a shard is lost entirely: fail (503) or partial (annotated degraded result)")
		debugAddr = flag.String("debug-addr", "", "debug listener (pprof, expvar, metrics); empty disables")
		slowMS    = flag.Int("slow-query-ms", 500, "slow-query log threshold in ms (0 disables)")
		slowPath  = flag.String("slow-query-log", "", "slow-query log file (default stderr)")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	distCfg := distConfig{
		worker:     *worker,
		shards:     *shards,
		shardAddrs: *shardAddrs,
		shardIndex: *shardIndex,
		shardLevel: *shardLevel,
		timeout:    *shardTimeout,
		policy:     *distPolicy,
	}

	// Flag semantics (-1 = library default, 0 = disable) invert the
	// colstore convention (0 = default, <0 = disable); translate here.
	storeOpts := colstore.Options{Eager: *storeEager}
	switch {
	case *storeGather == 0:
		storeOpts.GatherCutoff = -1
	case *storeGather > 0:
		storeOpts.GatherCutoff = *storeGather
	}
	session, closeStores, err := open(*data, *rows, *sf, *seed, *load, *storeDir, *resident, storeOpts)
	if err != nil {
		log.Fatal(err)
	}
	defer closeStores()

	if distCfg.worker {
		// Shard-worker mode: keep one hash slice of every fact and serve
		// the compact partial-aggregate RPC; the full API, cache, views,
		// and admission control live on the coordinator.
		handler, err := workerHandler(session, distCfg)
		if err != nil {
			log.Fatal(err)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		err = serve(ctx, serveConfig{
			addr:      *addr,
			debugAddr: *debugAddr,
			handler:   handler,
			metrics:   http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { metricsHandler(w) }),
			slow:      obsv.NewSlowLog(os.Stderr, 0),
			logger:    logger,
			drain:     5 * time.Second,
			ready: func(api, debug net.Addr) {
				logger.Info("assessd shard worker listening",
					"addr", api.String(),
					"shard", distCfg.shardIndex,
					"shards", distCfg.shards,
					"cubes", session.Engine.Facts())
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *parallel != 1 {
		session.Engine.SetParallelism(*parallel)
	}
	session.Engine.SetDenseKeyBudget(*denseBudg)
	session.Engine.SetMorselSize(*morsel)
	switch *cache {
	case "on":
		session.EnableCache(int64(*cacheMB) << 20)
	case "off":
	default:
		log.Fatalf("assessd: -cache must be on or off, got %q", *cache)
	}
	if *autoViews {
		session.EnableAutoViews(int64(*viewMB) << 20)
	}
	if *batchWin > 0 {
		session.EnableSharedScans(*batchWin)
	}
	// Distribution last: the coordinator becomes the engine's scan
	// batcher and chains to the shared-scan batcher for unsharded facts.
	if distCfg.active() {
		if err := enableDistributed(session, distCfg); err != nil {
			log.Fatal(err)
		}
	}

	slow, err := openSlowLog(*slowPath, time.Duration(*slowMS)*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	defer slow.Close()

	opts := []server.Option{
		server.WithLogger(logger),
		server.WithSlowLog(slow),
	}
	if *maxQueue > 0 || *latBudget > 0 {
		adm := sched.NewAdmission(*admitSlots, *maxQueue, *latBudget)
		opts = append(opts, server.WithAdmission(adm, *tenantHdr))
	}
	srv := server.New(session, opts...)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests for up
	// to 5 s, close the debug listener, and flush the slow-query log.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = serve(ctx, serveConfig{
		addr:      *addr,
		debugAddr: *debugAddr,
		handler:   srv.Handler(),
		metrics:   http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { metricsHandler(w) }),
		slow:      slow,
		logger:    logger,
		drain:     5 * time.Second,
		ready: func(api, debug net.Addr) {
			logger.Info("assessd listening",
				"addr", api.String(),
				"debugAddr", addrString(debug),
				"cubes", session.Engine.Facts(),
				"cache", *cache,
				"slowQueryMs", *slowMS)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
}

func addrString(a net.Addr) string {
	if a == nil {
		return ""
	}
	return a.String()
}

// metricsHandler renders the default registry (the debug listener's
// /metrics mirror; the API listener serves its own via the server).
func metricsHandler(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obsv.Default.WritePrometheus(w)
}

// openSlowLog builds the slow-query log: to a file when a path is
// given, else stderr. A non-positive threshold disables logging.
func openSlowLog(path string, threshold time.Duration) (*obsv.SlowLog, error) {
	if path == "" {
		return obsv.NewSlowLog(os.Stderr, threshold), nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("assessd: slow-query log: %w", err)
	}
	return obsv.NewSlowLog(f, threshold), nil
}

func open(data string, rows int, sf float64, seed int64, load, storeDir string, resident bool, opts colstore.Options) (*assess.Session, func(), error) {
	noop := func() {}
	if storeDir != "" {
		return openStoreDir(storeDir, resident, opts)
	}
	if load != "" {
		f, err := assess.LoadCubeFile(load)
		if err != nil {
			return nil, noop, err
		}
		s := assess.NewSession()
		return s, noop, s.RegisterCube(f.Schema.Name, f)
	}
	switch data {
	case "sales":
		s, _, err := assess.NewSalesSession(rows, seed)
		return s, noop, err
	case "ssb":
		s, _, err := assess.NewSSBSession(sf, seed)
		return s, noop, err
	}
	return nil, noop, fmt.Errorf("unknown dataset %q", data)
}

// openStoreDir serves cubes from columnar segment directories: dir may
// itself be a store directory (one cube) or a parent whose immediate
// store subdirectories are each registered under their schema name.
// Out-of-core by default; -resident decodes everything into memory.
// The returned function closes the underlying stores.
func openStoreDir(dir string, resident bool, opts colstore.Options) (*assess.Session, func(), error) {
	s := assess.NewSession()
	var closers []func() error
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}
	dirs, err := storeDirs(dir)
	if err != nil {
		return nil, closeAll, err
	}
	facts := make([]*assess.FactTable, len(dirs))
	schemas := make([]*assess.Schema, len(dirs))
	for i, sub := range dirs {
		var f *assess.FactTable
		if resident {
			if f, err = persist.LoadCubeDirResident(sub); err != nil {
				return nil, closeAll, fmt.Errorf("assessd: %s: %w", sub, err)
			}
		} else {
			var st *colstore.Store
			if f, st, err = persist.OpenCubeDir(sub, opts); err != nil {
				return nil, closeAll, fmt.Errorf("assessd: %s: %w", sub, err)
			}
			closers = append(closers, st.Close)
		}
		facts[i], schemas[i] = f, f.Schema
	}
	// Cubes written over shared dimensions (e.g. LINEORDER and
	// LINEORDER_BUDGET) decode their hierarchies independently; restore
	// the sharing that external-benchmark joins require.
	persist.ReconcileSchemas(schemas...)
	for i, f := range facts {
		if err := s.RegisterCube(f.Schema.Name, f); err != nil {
			return nil, closeAll, err
		}
		labelers, err := persist.LoadLabelers(dirs[i])
		if err != nil {
			return nil, closeAll, fmt.Errorf("assessd: %s: %w", dirs[i], err)
		}
		for _, l := range labelers {
			if err := s.RegisterLabeler(l); err != nil {
				return nil, closeAll, err
			}
		}
	}
	return s, closeAll, nil
}

// storeDirs resolves the cube directories under dir.
func storeDirs(dir string) ([]string, error) {
	if colstore.IsStoreDir(dir) {
		return []string{dir}, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if sub := filepath.Join(dir, e.Name()); e.IsDir() && colstore.IsStoreDir(sub) {
			dirs = append(dirs, sub)
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("assessd: no segment directories under %s", dir)
	}
	return dirs, nil
}
