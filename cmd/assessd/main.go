// Command assessd serves assess statements over HTTP/JSON for
// interactive analysis:
//
//	POST /assess   {"statement": "...", "plan": "best|cost|np|jop|pop"}
//	POST /explain  {"statement": "..."}
//	POST /validate {"statement": "..."}
//	POST /suggest  {"statement": "<partial>", "max": 3}
//	GET  /cubes
//	GET  /stats
//	GET  /healthz
//
// Usage:
//
//	assessd [-addr :8080] [-data sales|ssb] [-rows 50000] [-sf 0.01]
//	        [-seed 42] [-load cube.bin] [-parallel 0]
//	        [-cache on|off] [-cache-mb 64]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	assess "github.com/assess-olap/assess"
	"github.com/assess-olap/assess/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		data     = flag.String("data", "sales", "dataset: sales or ssb")
		rows     = flag.Int("rows", 50_000, "fact rows for the sales dataset")
		sf       = flag.Float64("sf", 0.01, "scale factor for the ssb dataset")
		seed     = flag.Int64("seed", 42, "generator seed")
		load     = flag.String("load", "", "serve a cube loaded from a file instead of generating one")
		parallel = flag.Int("parallel", 1, "fact-scan parallelism (0 = all cores)")
		cache    = flag.String("cache", "on", "query-result cache: on or off")
		cacheMB  = flag.Int("cache-mb", 64, "query-result cache budget in MiB")
	)
	flag.Parse()

	session, err := open(*data, *rows, *sf, *seed, *load)
	if err != nil {
		log.Fatal(err)
	}
	if *parallel != 1 {
		session.Engine.SetParallelism(*parallel)
	}
	switch *cache {
	case "on":
		session.EnableCache(int64(*cacheMB) << 20)
	case "off":
	default:
		log.Fatalf("assessd: -cache must be on or off, got %q", *cache)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(session).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("assessd listening on %s (cubes: %v, cache: %s)", *addr, session.Engine.Facts(), *cache)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests for up
	// to 5 s before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Print("assessd: signal received, shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("assessd: shutdown: %v", err)
		}
	}
}

func open(data string, rows int, sf float64, seed int64, load string) (*assess.Session, error) {
	if load != "" {
		f, err := assess.LoadCubeFile(load)
		if err != nil {
			return nil, err
		}
		s := assess.NewSession()
		return s, s.RegisterCube(f.Schema.Name, f)
	}
	switch data {
	case "sales":
		s, _, err := assess.NewSalesSession(rows, seed)
		return s, err
	case "ssb":
		s, _, err := assess.NewSSBSession(sf, seed)
		return s, err
	}
	return nil, fmt.Errorf("unknown dataset %q", data)
}
