// Command assessd serves assess statements over HTTP/JSON for
// interactive analysis:
//
//	POST /assess   {"statement": "...", "plan": "best|cost|np|jop|pop"}
//	POST /explain  {"statement": "..."}
//	POST /validate {"statement": "..."}
//	POST /suggest  {"statement": "<partial>", "max": 3}
//	GET  /cubes
//	GET  /healthz
//
// Usage:
//
//	assessd [-addr :8080] [-data sales|ssb] [-rows 50000] [-sf 0.01]
//	        [-seed 42] [-load cube.bin] [-parallel 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	assess "github.com/assess-olap/assess"
	"github.com/assess-olap/assess/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		data     = flag.String("data", "sales", "dataset: sales or ssb")
		rows     = flag.Int("rows", 50_000, "fact rows for the sales dataset")
		sf       = flag.Float64("sf", 0.01, "scale factor for the ssb dataset")
		seed     = flag.Int64("seed", 42, "generator seed")
		load     = flag.String("load", "", "serve a cube loaded from a file instead of generating one")
		parallel = flag.Int("parallel", 1, "fact-scan parallelism (0 = all cores)")
	)
	flag.Parse()

	session, err := open(*data, *rows, *sf, *seed, *load)
	if err != nil {
		log.Fatal(err)
	}
	if *parallel != 1 {
		session.Engine.SetParallelism(*parallel)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(session).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("assessd listening on %s (cubes: %v)", *addr, session.Engine.Facts())
	log.Fatal(srv.ListenAndServe())
}

func open(data string, rows int, sf float64, seed int64, load string) (*assess.Session, error) {
	if load != "" {
		f, err := assess.LoadCubeFile(load)
		if err != nil {
			return nil, err
		}
		s := assess.NewSession()
		return s, s.RegisterCube(f.Schema.Name, f)
	}
	switch data {
	case "sales":
		s, _, err := assess.NewSalesSession(rows, seed)
		return s, err
	case "ssb":
		s, _, err := assess.NewSSBSession(sf, seed)
		return s, err
	}
	return nil, fmt.Errorf("unknown dataset %q", data)
}
