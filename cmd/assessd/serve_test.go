package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/assess-olap/assess/internal/obsv"
)

// syncBuffer is a goroutine-safe sink for the slow-query log under test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestServeShutdown is the regression test for the shutdown path: on
// cancellation both the API and debug listeners must stop accepting
// connections and the slow-query log must be flushed to its sink.
func TestServeShutdown(t *testing.T) {
	sink := &syncBuffer{}
	// Threshold 0ns with a positive value: everything logged is slower.
	slow := obsv.NewSlowLog(sink, time.Nanosecond)
	slow.Log(time.Second, obsv.SlowEntry{
		RequestID: "reg-test",
		Endpoint:  "/assess",
		Statement: "with SALES by region get qty",
	})
	// Entry is buffered: it must not reach the sink before shutdown.
	if s := sink.String(); s != "" {
		t.Fatalf("slow log flushed before shutdown: %q", s)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan [2]net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, serveConfig{
			addr:      "127.0.0.1:0",
			debugAddr: "127.0.0.1:0",
			handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				fmt.Fprint(w, "ok")
			}),
			metrics: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				obsv.Default.WritePrometheus(w)
			}),
			slow:  slow,
			drain: 2 * time.Second,
			ready: func(api, debug net.Addr) { ready <- [2]net.Addr{api, debug} },
		})
	}()

	var addrs [2]net.Addr
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for listeners")
	}
	apiURL := "http://" + addrs[0].String()
	debugURL := "http://" + addrs[1].String()

	if code, body := get(t, apiURL+"/"); code != http.StatusOK || body != "ok" {
		t.Fatalf("api listener: got %d %q", code, body)
	}
	if code, body := get(t, debugURL+"/metrics"); code != http.StatusOK || !strings.Contains(body, "# TYPE") {
		t.Fatalf("debug /metrics: got %d, body %q", code, body[:min(len(body), 120)])
	}
	if code, _ := get(t, debugURL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("debug pprof: got %d", code)
	}
	if code, body := get(t, debugURL+"/debug/vars"); code != http.StatusOK || !strings.HasPrefix(body, "{") {
		t.Fatalf("debug expvar: got %d", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned error on clean shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return within the drain budget")
	}

	// Both listeners must refuse connections after shutdown.
	for _, a := range addrs {
		if c, err := net.DialTimeout("tcp", a.String(), 200*time.Millisecond); err == nil {
			c.Close()
			t.Errorf("listener %s still accepting after shutdown", a)
		}
	}

	// The buffered slow-query entry must have been flushed during drain.
	out := sink.String()
	if !strings.Contains(out, `"requestId":"reg-test"`) {
		t.Errorf("slow log not flushed on shutdown; sink = %q", out)
	}
}

// TestServeListenError covers the error path: a bad debug address must
// not leak the already-bound API listener.
func TestServeListenError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	err = serve(context.Background(), serveConfig{
		addr:      "127.0.0.1:0",
		debugAddr: ln.Addr().String(), // already in use
		handler:   http.NewServeMux(),
	})
	if err == nil {
		t.Fatal("serve succeeded with a conflicting debug address")
	}
}
