package main

import (
	"context"
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/assess-olap/assess/internal/obsv"
)

// serveConfig wires the main API listener, the optional debug listener
// (pprof + expvar + metrics), and the slow-query log into one lifecycle
// so a regression test can drive startup and shutdown end to end.
type serveConfig struct {
	addr      string       // main listener address
	debugAddr string       // debug listener address, "" disables
	handler   http.Handler // main API handler
	metrics   http.Handler // /metrics handler mounted on the debug mux too
	slow      *obsv.SlowLog
	logger    *slog.Logger
	drain     time.Duration // shutdown drain budget
	// ready, when non-nil, receives the bound listener addresses once
	// both listeners accept connections (debug nil when disabled).
	ready func(api net.Addr, debug net.Addr)
}

// debugMux builds the debug listener's handler: net/http/pprof, expvar,
// and the Prometheus metrics endpoint. Kept off the main listener so
// profiling endpoints are never exposed on the serving port.
func debugMux(metrics http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if metrics != nil {
		mux.Handle("/metrics", metrics)
	}
	return mux
}

// serve runs the listeners until ctx is cancelled, then drains in-flight
// requests (bounded by cfg.drain), closes the debug listener, and
// flushes the slow-query log. It returns the first listener error, or
// nil on a clean shutdown.
func serve(ctx context.Context, cfg serveConfig) error {
	if cfg.drain <= 0 {
		cfg.drain = 5 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	api := &http.Server{Handler: cfg.handler, ReadHeaderTimeout: 5 * time.Second}

	var (
		debug   *http.Server
		debugLn net.Listener
	)
	if cfg.debugAddr != "" {
		debugLn, err = net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			ln.Close()
			return err
		}
		debug = &http.Server{Handler: debugMux(cfg.metrics), ReadHeaderTimeout: 5 * time.Second}
	}

	errc := make(chan error, 2)
	go func() { errc <- api.Serve(ln) }()
	if debug != nil {
		go func() { errc <- debug.Serve(debugLn) }()
	}
	if cfg.ready != nil {
		var daddr net.Addr
		if debugLn != nil {
			daddr = debugLn.Addr()
		}
		cfg.ready(ln.Addr(), daddr)
	}

	select {
	case err := <-errc:
		// A listener died on its own; tear the rest down.
		api.Close()
		if debug != nil {
			debug.Close()
		}
		cfg.slow.Flush()
		return err
	case <-ctx.Done():
	}

	if cfg.logger != nil {
		cfg.logger.Info("shutting down", "drain", cfg.drain)
	}
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	// Drain the API listener first (in-flight statements finish), then
	// the debug listener (an attached profiler should not hold shutdown
	// beyond the drain budget), then flush the slow-query log so every
	// statement served before the drain is on disk.
	serr := api.Shutdown(sctx)
	if debug != nil {
		if derr := debug.Shutdown(sctx); serr == nil {
			serr = derr
		}
	}
	if ferr := cfg.slow.Flush(); serr == nil {
		serr = ferr
	}
	return serr
}
