package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	assess "github.com/assess-olap/assess"
	"github.com/assess-olap/assess/internal/server"
)

// newServerHandler is the full-API handler a non-worker assessd serves.
func newServerHandler(s *assess.Session) http.Handler {
	return server.New(s).Handler()
}

func newSalesSession(t *testing.T) *assess.Session {
	t.Helper()
	s, _, err := assess.NewSalesSession(4_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

// TestWorkerCoordinatorEndToEnd drives the assessd wiring the way the
// multi-process smoke does, but in-process: two sessions become shard
// workers over HTTP, a third session scatter-gathers over them via
// -shard-addrs-style configuration, and its answers must match a solo
// server's bit for bit on the integer measure.
func TestWorkerCoordinatorEndToEnd(t *testing.T) {
	const nShards = 2
	cfgBase := distConfig{shards: nShards, shardLevel: "product"}

	// Shard workers: each opens the full dataset and keeps its slice.
	var addrs []string
	for i := 0; i < nShards; i++ {
		wcfg := cfgBase
		wcfg.worker = true
		wcfg.shardIndex = i
		h, err := workerHandler(newSalesSession(t), wcfg)
		if err != nil {
			t.Fatal(err)
		}
		ws := httptest.NewServer(h)
		t.Cleanup(ws.Close)
		addrs = append(addrs, ws.URL)

		resp, err := http.Get(ws.URL + "/healthz")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("worker %d health: %v %v", i, err, resp)
		}
		resp.Body.Close()
	}

	// Coordinator session over the remote workers.
	coordSession := newSalesSession(t)
	ccfg := cfgBase
	ccfg.shardAddrs = strings.Join(addrs, ",")
	if err := enableDistributed(coordSession, ccfg); err != nil {
		t.Fatal(err)
	}
	coord := httptest.NewServer(newServerHandler(coordSession))
	t.Cleanup(coord.Close)

	solo := httptest.NewServer(newServerHandler(newSalesSession(t)))
	t.Cleanup(solo.Close)

	statements := []string{
		`with SALES by product, country get quantity`,
		`with SALES for category = 'Fruit' by type, year get quantity`,
		`with SALES for product = 'Apple' by country get quantity`,
	}
	for _, stmt := range statements {
		req := map[string]any{"statement": stmt}
		code, body := postJSON(t, coord.URL+"/query", req)
		if code != http.StatusOK {
			t.Fatalf("%s: coordinator status %d: %s", stmt, code, body)
		}
		scode, sbody := postJSON(t, solo.URL+"/query", req)
		if scode != http.StatusOK {
			t.Fatalf("%s: solo status %d: %s", stmt, scode, sbody)
		}
		if got, want := canonQuantities(t, body), canonQuantities(t, sbody); got != want {
			t.Errorf("%s:\ncoordinator %s\nsolo        %s", stmt, got, want)
		}
	}

	// The coordinator's /stats must expose the shard topology.
	resp, err := http.Get(coord.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Dist *struct {
			Tables []struct {
				Fact   string `json:"fact"`
				Shards []struct {
					Targets []string `json:"targets"`
				} `json:"shards"`
			} `json:"tables"`
		} `json:"dist"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Dist == nil || len(stats.Dist.Tables) != 2 {
		t.Fatalf("dist stats = %+v, want 2 sharded tables", stats.Dist)
	}
	for _, tb := range stats.Dist.Tables {
		if len(tb.Shards) != nShards {
			t.Errorf("table %s has %d shards, want %d", tb.Fact, len(tb.Shards), nShards)
		}
	}
}

// TestInProcessClusterFlagWiring covers the -shards N (no addresses)
// shape end to end through enableDistributed.
func TestInProcessClusterFlagWiring(t *testing.T) {
	session := newSalesSession(t)
	if err := enableDistributed(session, distConfig{shards: 3, policy: "partial"}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServerHandler(session))
	t.Cleanup(srv.Close)

	code, body := postJSON(t, srv.URL+"/query", map[string]any{
		"statement": `with SALES by country get quantity`,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		Partial bool `json:"partial"`
		Cells   int  `json:"cells"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Partial || out.Cells == 0 {
		t.Fatalf("response = %+v", out)
	}
}

// TestWorkerHandlerValidation pins the flag-validation errors.
func TestWorkerHandlerValidation(t *testing.T) {
	if _, err := workerHandler(newSalesSession(t), distConfig{worker: true, shards: 0}); err == nil {
		t.Error("no error for -shards 0")
	}
	if _, err := workerHandler(newSalesSession(t), distConfig{worker: true, shards: 2, shardIndex: 2}); err == nil {
		t.Error("no error for out-of-range -shard-index")
	}
	if _, err := workerHandler(newSalesSession(t), distConfig{worker: true, shards: 2, shardLevel: "nope"}); err == nil {
		t.Error("no error for unknown -shard-level")
	}
	if err := enableDistributed(newSalesSession(t), distConfig{shards: 2, policy: "maybe"}); err == nil {
		t.Error("no error for unknown -dist-policy")
	}
}

// canonQuantities renders a /query response's rows as a sorted
// "coordinate=quantity" list for cross-server comparison of the
// integer-valued measure.
func canonQuantities(t *testing.T, body []byte) string {
	t.Helper()
	var out struct {
		Levels []string         `json:"levels"`
		Rows   []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("%v: %s", err, body)
	}
	lines := make([]string, 0, len(out.Rows))
	for _, r := range out.Rows {
		var coord []string
		for _, l := range out.Levels {
			coord = append(coord, fmt.Sprint(r[l]))
		}
		lines = append(lines, fmt.Sprintf("%s=%v", strings.Join(coord, "|"), r["quantity"]))
	}
	sort.Strings(lines)
	return strings.Join(lines, "; ")
}
