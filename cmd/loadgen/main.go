// Command loadgen drives an assessd server with the load harness and
// prints latency-vs-scale tables.
//
// Closed-loop mode sweeps worker counts (each worker issues requests
// back-to-back — the concurrency-scaling experiment):
//
//	loadgen -url http://localhost:8080 -mode closed -workers 1,2,4,8,16 -per-worker 200
//
// Open-loop mode sweeps Poisson arrival rates (offered load independent
// of service rate, so overload shows up as latency and shed counts):
//
//	loadgen -url http://localhost:8080 -mode open -rates 50,100,200,400 -duration 5s
//
// The statement mix targets the built-in sales dataset (assessd -data
// sales); -endpoint switches between /query and /assess bodies.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/assess-olap/assess/internal/loadtest"
	"github.com/assess-olap/assess/internal/server"
)

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "assessd base URL")
		targets   = flag.String("targets", "", "comma-separated assessd base URLs to round-robin across (overrides -url)")
		mode      = flag.String("mode", "closed", "generator: closed or open")
		workers   = flag.String("workers", "1,2,4,8", "closed-loop worker counts to sweep")
		perWorker = flag.Int("per-worker", 100, "closed-loop requests per worker")
		rates     = flag.String("rates", "50,100,200", "open-loop arrival rates (qps) to sweep")
		duration  = flag.Duration("duration", 5*time.Second, "open-loop duration per rate")
		endpoint  = flag.String("endpoint", "/query", "endpoint: /query or /assess")
		seed      = flag.Int64("seed", 42, "statement-mix seed")
		tenants   = flag.Int("tenants", 3, "distinct tenants in the mix (0 disables the header)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		selective = flag.Float64("selectivity", 0,
			"fraction of draws taken from the narrow-predicate statement set (0..1; exercises late materialization)")
	)
	flag.Parse()

	mix := loadtest.DefaultSalesMix()
	mix.Path = *endpoint
	mix.Selectivity = *selective
	if *endpoint == "/assess" {
		for i, s := range mix.Statements {
			mix.Statements[i] = strings.Replace(s, " get ", " assess ", 1) + " labels quartiles"
		}
		for i, s := range mix.Selective {
			mix.Selective[i] = strings.Replace(s, " get ", " assess ", 1) + " labels quartiles"
		}
	}
	mix.Tenants = mix.Tenants[:0]
	for i := 0; i < *tenants; i++ {
		mix.Tenants = append(mix.Tenants, fmt.Sprintf("tenant%d", i))
	}

	httpTarget := func(base string) loadtest.HTTPTarget {
		return loadtest.HTTPTarget{
			BaseURL:      strings.TrimRight(base, "/"),
			Client:       &http.Client{Timeout: *timeout},
			TenantHeader: server.DefaultTenantHeader,
		}
	}
	var target loadtest.Target = httpTarget(*url)
	if *targets != "" {
		mt := &loadtest.MultiTarget{}
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				mt.Targets = append(mt.Targets, httpTarget(u))
			}
		}
		if len(mt.Targets) == 0 {
			log.Fatal("loadgen: -targets is empty")
		}
		target = mt
	}
	ctx := context.Background()

	var results []loadtest.Result
	switch *mode {
	case "closed":
		for _, w := range parseInts(*workers) {
			fmt.Fprintf(os.Stderr, "closed loop: %d workers × %d requests...\n", w, *perWorker)
			results = append(results, loadtest.Closed(ctx, target, mix, w, *perWorker, *seed))
		}
	case "open":
		for _, r := range parseInts(*rates) {
			fmt.Fprintf(os.Stderr, "open loop: %d qps for %v...\n", r, *duration)
			results = append(results, loadtest.Open(ctx, target, mix, float64(r), *duration, *seed))
		}
	default:
		log.Fatalf("loadgen: -mode must be closed or open, got %q", *mode)
	}
	fmt.Print(loadtest.Table(results))
}

func parseInts(csv string) []int {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			log.Fatalf("loadgen: bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		log.Fatal("loadgen: empty sweep list")
	}
	return out
}
