// Command assessbench regenerates the tables and figures of the paper's
// evaluation (Section 6): Table 1 (formulation effort), Table 2
// (target-cube cardinalities), Table 3 (minimum execution times),
// Figure 3 (per-plan execution times), and Figure 4 (the per-phase
// breakdown of the Past intention).
//
// Usage:
//
//	assessbench [-experiment all|table1|table2|table3|fig3|fig4]
//	            [-runs 3] [-seed 42] [-quick]
//	            [-sf1 0.01] [-sf10 0.1] [-sf100 1.0]
//
// The default scale presets keep the paper's three 10× steps but start
// from 6·10^4 fact rows so the sweep runs on a laptop; raise -sf100 (and
// friends) to approach the paper's absolute sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/assess-olap/assess/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1, table2, table3, fig3, fig4, or all")
		runs       = flag.Int("runs", 3, "timed runs per (intention, plan, scale); times are averaged")
		seed       = flag.Int64("seed", 42, "generator seed")
		quick      = flag.Bool("quick", false, "use small scale presets for a smoke run")
		sf1        = flag.Float64("sf1", 0.01, "scale factor of the SSB1 preset")
		sf10       = flag.Float64("sf10", 0.1, "scale factor of the SSB10 preset")
		sf100      = flag.Float64("sf100", 1.0, "scale factor of the SSB100 preset")
		verbose    = flag.Bool("v", false, "print progress while running")
	)
	flag.Parse()

	scales := []experiments.Scale{
		{Label: "SSB1", SF: *sf1},
		{Label: "SSB10", SF: *sf10},
		{Label: "SSB100", SF: *sf100},
	}
	if *quick {
		scales = experiments.QuickScales()
	}

	progress := func(string) {}
	if *verbose {
		progress = func(msg string) { fmt.Fprintln(os.Stderr, "…", msg) }
	}

	want := func(name string) bool {
		return *experiment == "all" || strings.EqualFold(*experiment, name)
	}
	switch {
	case want("table1"), want("table2"), want("table3"), want("fig3"), want("fig4"):
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}

	progress("generating datasets")
	envs, err := experiments.SetupAll(scales, *seed)
	if err != nil {
		fatal(err)
	}
	for _, env := range envs {
		fmt.Printf("# %s: %d fact rows (SF %g)\n", env.Scale.Label, env.Rows, env.Scale.SF)
	}
	fmt.Println()

	if want("table1") {
		rows, err := experiments.Table1(envs[0])
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable1(rows))
	}
	if want("table2") {
		rows, err := experiments.Table2(envs)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderTable2(rows, scales))
	}
	if want("table3") || want("fig3") || want("fig4") {
		timings, err := experiments.RunMatrix(envs, *runs, progress)
		if err != nil {
			fatal(err)
		}
		if want("table3") {
			fmt.Println(experiments.RenderTable3(experiments.Table3(timings, scales), scales))
		}
		if want("fig3") {
			fmt.Println(experiments.RenderFig3(timings, scales))
		}
		if want("fig4") {
			fmt.Println(experiments.RenderFig4(timings, scales))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "assessbench:", err)
	os.Exit(1)
}
