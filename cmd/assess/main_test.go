package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

const exampleStatement = `with SALES
	for type = 'Fresh Fruit', country = 'Italy'
	by product, country
	assess quantity against country = 'France'
	using percOfTotal(difference(quantity, benchmark.quantity))
	labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}`

func TestOpenSessionDatasets(t *testing.T) {
	for _, data := range []string{"figure1", "sales", "ssb"} {
		s, banner, err := openSession(data, 500, 0.0005, 1, "")
		if err != nil {
			t.Fatalf("%s: %v", data, err)
		}
		if s == nil || banner == "" {
			t.Errorf("%s: empty session or banner", data)
		}
	}
	if _, _, err := openSession("nope", 0, 0, 0, ""); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunOnePlansAndExplain(t *testing.T) {
	s, _, err := openSession("figure1", 0, 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, planName := range []string{"best", "cost", "np", "jop", "pop"} {
		out, err := captureStdout(t, func() error {
			return runOne(s, exampleStatement, planName, false, true)
		})
		if err != nil {
			t.Fatalf("plan %s: %v", planName, err)
		}
		if !strings.Contains(out, "bad") || !strings.Contains(out, "breakdown:") {
			t.Errorf("plan %s output:\n%s", planName, out)
		}
	}
	out, err := captureStdout(t, func() error {
		return runOne(s, exampleStatement, "best", true, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "POP plan") {
		t.Errorf("explain output:\n%s", out)
	}
	if err := runOne(s, exampleStatement, "warp", false, false); err == nil {
		t.Error("unknown plan accepted")
	}
	if err := runOne(s, "garbage", "best", false, false); err == nil {
		t.Error("garbage statement accepted")
	}
}

func TestRunOneDeclaration(t *testing.T) {
	s, _, err := openSession("figure1", 0, 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return runOne(s, `declare labels signs as {[-inf, 0): down, [0, inf]: up}`, "best", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "declared") {
		t.Errorf("declaration output: %s", out)
	}
}

func TestRunScriptAndHighlights(t *testing.T) {
	s, _, err := openSession("figure1", 0, 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.assess")
	script := `-- comment line
declare labels signs as {[-inf, 0): down, [0, inf]: up};

with SALES by product assess quantity against 80
using difference(quantity, benchmark.quantity)
labels signs`
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	showHighlights = true
	defer func() { showHighlights = false }()
	out, err := captureStdout(t, func() error {
		return runScript(s, path, "best", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"declared", "down", "up"} {
		if !strings.Contains(out, want) {
			t.Errorf("script output lacks %q:\n%s", want, out)
		}
	}
	if err := runScript(s, filepath.Join(t.TempDir(), "missing"), "best", false); err == nil {
		t.Error("missing script accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.assess")
	if err := os.WriteFile(bad, []byte("with NOPE by x assess y labels q"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScript(s, bad, "best", false); err == nil {
		t.Error("failing script accepted")
	}
}

func TestRunSuggestOutput(t *testing.T) {
	s, _, err := openSession("figure1", 0, 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return runSuggest(s, `with SALES for country = 'Italy' by product, country assess quantity`, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "interest") {
		t.Errorf("suggest output:\n%s", out)
	}
}

func TestSaveAndLoadRoundTrip(t *testing.T) {
	s, _, err := openSession("figure1", 0, 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.cube")
	out, err := captureStdout(t, func() error { return saveCube(s, path) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "saved cube SALES") {
		t.Errorf("save output: %s", out)
	}
	s2, banner, err := openSession("", 0, 0, 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(banner, "loaded cube SALES") {
		t.Errorf("banner: %s", banner)
	}
	if _, err := captureStdout(t, func() error {
		return runOne(s2, exampleStatement, "np", false, false)
	}); err != nil {
		t.Errorf("statement over loaded cube: %v", err)
	}
	// Saving a session with no known cube fails.
	empty, _, _ := openSession("figure1", 0, 0, 0, "")
	_ = empty
	if err := saveCube(s2, filepath.Join(t.TempDir(), "x.cube")); err != nil {
		t.Errorf("saving loaded cube: %v", err)
	}
}

func TestFirstLine(t *testing.T) {
	if got := firstLine("one\ntwo"); got != "one …" {
		t.Errorf("firstLine = %q", got)
	}
	if got := firstLine("single"); got != "single" {
		t.Errorf("firstLine = %q", got)
	}
}
