// Command assess is an interactive shell (and one-shot runner) for
// assess statements over a built-in dataset: the paper's SALES working
// example or a Star Schema Benchmark cube.
//
// Usage:
//
//	assess [-data sales|figure1|ssb] [-rows 50000] [-sf 0.01] [-seed 42]
//	       [-plan best|np|jop|pop] [-explain] [statement]
//
// With a statement argument it runs once and prints the labeled result;
// without one it reads statements from stdin, terminated by a semicolon
// or a blank line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	assess "github.com/assess-olap/assess"
)

func main() {
	var (
		data      = flag.String("data", "sales", "dataset: sales, figure1, or ssb")
		rows      = flag.Int("rows", 50_000, "fact rows for the sales dataset")
		sf        = flag.Float64("sf", 0.01, "scale factor for the ssb dataset")
		seed      = flag.Int64("seed", 42, "generator seed")
		planStr   = flag.String("plan", "best", "execution plan: best, cost, np, jop, or pop")
		explain   = flag.Bool("explain", false, "print the plan instead of executing")
		timing    = flag.Bool("time", false, "print the execution-time breakdown")
		costs     = flag.Bool("costs", false, "print the estimated cost of every feasible plan")
		suggest   = flag.Int("suggest", 0, "complete a partial statement and print up to N ranked suggestions")
		load      = flag.String("load", "", "load the cube from a file saved with -save instead of generating it")
		save      = flag.String("save", "", "save the generated dataset's primary cube to a file and exit")
		script    = flag.String("f", "", "execute the ';'-separated statements of a script file")
		highlight = flag.Bool("highlights", false, "print the anomalous cells (|z| ≥ 2) of each result")
	)
	flag.Parse()
	showHighlights = *highlight

	session, banner, err := openSession(*data, *rows, *sf, *seed, *load)
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		if err := saveCube(session, *save); err != nil {
			fatal(err)
		}
		return
	}

	if *script != "" {
		if err := runScript(session, *script, *planStr, *timing); err != nil {
			fatal(err)
		}
		return
	}
	if stmt := strings.TrimSpace(strings.Join(flag.Args(), " ")); stmt != "" {
		switch {
		case *suggest > 0:
			err = runSuggest(session, stmt, *suggest)
		case *costs:
			var out string
			out, err = session.ExplainCosts(stmt)
			fmt.Print(out)
		default:
			err = runOne(session, stmt, *planStr, *explain, *timing)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println(banner)
	fmt.Println("Enter assess statements; terminate with ';' or a blank line. Ctrl-D exits.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Print("assess> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		done := strings.HasSuffix(trimmed, ";") || (trimmed == "" && buf.Len() > 0)
		buf.WriteString(strings.TrimSuffix(line, ";"))
		buf.WriteByte('\n')
		if !done {
			continue
		}
		stmt := strings.TrimSpace(buf.String())
		buf.Reset()
		if stmt != "" {
			if err := runOne(session, stmt, *planStr, *explain, *timing); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
		prompt()
	}
}

func saveCube(s *assess.Session, path string) error {
	for _, name := range []string{"SALES", "LINEORDER"} {
		if f, ok := s.Engine.Fact(name); ok {
			if err := assess.SaveCubeFile(path, f); err != nil {
				return err
			}
			fmt.Printf("saved cube %s (%d rows) to %s\n", name, f.Rows(), path)
			return nil
		}
	}
	return fmt.Errorf("no cube to save")
}

func openSession(data string, rows int, sf float64, seed int64, load string) (*assess.Session, string, error) {
	if load != "" {
		f, err := assess.LoadCubeFile(load)
		if err != nil {
			return nil, "", err
		}
		s := assess.NewSession()
		if err := s.RegisterCube(f.Schema.Name, f); err != nil {
			return nil, "", err
		}
		return s, fmt.Sprintf("loaded cube %s: %d fact rows from %s", f.Schema.Name, f.Rows(), load), nil
	}
	switch data {
	case "sales":
		s, ds, err := assess.NewSalesSession(rows, seed)
		if err != nil {
			return nil, "", err
		}
		return s, fmt.Sprintf("SALES dataset: %d fact rows; cubes SALES and SALES_TARGET", ds.Fact.Rows()), nil
	case "figure1":
		ds := assess.FigureOneDataset()
		s := assess.NewSession()
		if err := s.RegisterCube("SALES", ds.Fact); err != nil {
			return nil, "", err
		}
		return s, "Figure 1 miniature dataset; cube SALES", nil
	case "ssb":
		s, ds, err := assess.NewSSBSession(sf, seed)
		if err != nil {
			return nil, "", err
		}
		return s, fmt.Sprintf("SSB dataset: %d fact rows (SF %g); cubes LINEORDER and LINEORDER_BUDGET",
			ds.Fact.Rows(), sf), nil
	}
	return nil, "", fmt.Errorf("unknown dataset %q (want sales, figure1, or ssb)", data)
}

// showHighlights toggles printing anomalous cells after each result.
var showHighlights bool

// runScript executes every ';'-separated statement of a file in order
// (declarations included), stopping at the first error.
func runScript(s *assess.Session, path, planStr string, timing bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for _, stmt := range strings.Split(string(data), ";") {
		stmt = strings.TrimSpace(stripComments(stmt))
		if stmt == "" {
			continue
		}
		fmt.Printf("── %s\n", firstLine(stmt))
		if err := runOne(s, stmt, planStr, false, timing); err != nil {
			return fmt.Errorf("%s: %w", firstLine(stmt), err)
		}
		fmt.Println()
	}
	return nil
}

// stripComments removes lines starting with "--".
func stripComments(chunk string) string {
	lines := strings.Split(chunk, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "--") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

func firstLine(stmt string) string {
	if i := strings.IndexByte(stmt, '\n'); i >= 0 {
		return stmt[:i] + " …"
	}
	return stmt
}

func runSuggest(s *assess.Session, partial string, n int) error {
	sugs, err := s.Suggest(partial, n)
	if err != nil {
		return err
	}
	for i, sg := range sugs {
		fmt.Printf("%d. [interest %.3f, %d cells] %s\n   %s\n\n",
			i+1, sg.Score, sg.Cells, sg.Note, sg.Statement)
	}
	return nil
}

func runOne(s *assess.Session, stmt, planStr string, explain, timing bool) error {
	// Plain cube queries (the get operator) bypass the assess pipeline.
	if assess.IsGetStatement(stmt) {
		qr, err := s.Query(stmt)
		if err != nil {
			return err
		}
		fmt.Print(qr.Render())
		fmt.Printf("(%d cells, %v)\n", qr.Cube.Len(), qr.Total)
		return nil
	}
	var strategy assess.Strategy
	best := false
	costBased := false
	switch strings.ToLower(planStr) {
	case "best", "":
		best = true
	case "cost":
		costBased = true
	case "np":
		strategy = assess.NP
	case "jop":
		strategy = assess.JOP
	case "pop":
		strategy = assess.POP
	default:
		return fmt.Errorf("unknown plan %q (want best, np, jop, or pop)", planStr)
	}
	if explain {
		var (
			p   *assess.Plan
			err error
		)
		switch {
		case costBased:
			p, err = s.PrepareCostBased(stmt)
		case best:
			p, err = s.Prepare(stmt)
		default:
			p, err = s.PrepareWith(stmt, strategy)
		}
		if err != nil {
			return err
		}
		fmt.Print(p.Explain())
		return nil
	}
	var (
		res *assess.Result
		err error
	)
	switch {
	case costBased:
		res, err = s.ExecCostBased(stmt)
	case best:
		res, err = s.Exec(stmt)
	default:
		res, err = s.ExecWith(stmt, strategy)
	}
	if err != nil {
		return err
	}
	if res == nil {
		fmt.Println("declared.")
		return nil
	}
	out, err := res.Render()
	if err != nil {
		return err
	}
	fmt.Print(out)
	fmt.Printf("(%d cells, %v plan, %v)\n", res.Cube.Len(), res.Plan.Strategy, res.Total)
	if timing {
		fmt.Println("breakdown:", res.Breakdown.String())
		fmt.Print(res.ExplainAnalyze())
	}
	if showHighlights {
		hs, err := res.Highlights(2)
		if err != nil {
			return err
		}
		for _, h := range hs {
			fmt.Printf("highlight: %v comparison=%.4g (z=%+.2f) label=%s\n",
				h.Row.Coordinate, h.Row.Comparison, h.ZScore, h.Row.Label)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "assess:", err)
	os.Exit(1)
}
