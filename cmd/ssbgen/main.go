// Command ssbgen generates a Star Schema Benchmark dataset and prints
// its statistics: fact cardinality, dimension cardinalities per level,
// and generation time. It is the dbgen stand-in used to verify that the
// generator hits the SSB cardinality ratios at any scale factor.
//
// Usage:
//
//	ssbgen [-sf 0.01] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	assess "github.com/assess-olap/assess"
)

func main() {
	var (
		sf   = flag.Float64("sf", 0.01, "scale factor (6,000,000·sf fact rows)")
		seed = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	start := time.Now()
	ds := assess.GenerateSSB(*sf, *seed)
	elapsed := time.Since(start)

	fmt.Printf("SSB scale factor %g (seed %d) generated in %v\n\n", *sf, *seed, elapsed)
	fmt.Printf("%-22s %d rows\n", "LINEORDER:", ds.Fact.Rows())
	fmt.Printf("%-22s %d rows (expectedRevenue)\n\n", "LINEORDER_BUDGET:", ds.Budget.Rows())
	for _, h := range ds.Schema.Hiers {
		fmt.Printf("%s hierarchy:\n", h.Name())
		for d, level := range h.Levels() {
			fmt.Printf("  %-12s %8d members\n", level, h.Dict(d).Len())
		}
	}
	if err := ds.Schema.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ssbgen: schema validation failed:", err)
		os.Exit(1)
	}
	fmt.Println("\nschema validation: OK (every member has a complete roll-up path)")
}
