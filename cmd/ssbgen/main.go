// Command ssbgen generates a Star Schema Benchmark dataset and prints
// its statistics: fact cardinality, dimension cardinalities per level,
// and generation time. It is the dbgen stand-in used to verify that the
// generator hits the SSB cardinality ratios at any scale factor.
//
// With -out-dir it instead streams the rows straight into columnar
// segment directories — <out>/LINEORDER and <out>/LINEORDER_BUDGET —
// one row at a time, so generation is out-of-core: resident memory is
// bounded by the dimension data plus one segment buffer regardless of
// scale factor. The directories are served by assessd -store-dir.
//
// Usage:
//
//	ssbgen [-sf 0.01] [-seed 42] [-out-dir DIR] [-segment-rows N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/assess-olap/assess/internal/colstore"
	"github.com/assess-olap/assess/internal/ssb"
)

// Segment-directory names under -out-dir, matching the cube names the
// server registers.
const (
	factDir   = "LINEORDER"
	budgetDir = "LINEORDER_BUDGET"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.01, "scale factor (6,000,000·sf fact rows)")
		seed    = flag.Int64("seed", 42, "generator seed")
		outDir  = flag.String("out-dir", "", "write segment directories under this path instead of holding the dataset in memory")
		segRows = flag.Int("segment-rows", 0, "rows per segment in -out-dir mode (0 = colstore default)")
	)
	flag.Parse()

	start := time.Now()
	g := ssb.NewGenerator(*sf, *seed)
	var rows int
	if *outDir == "" {
		rows = g.Materialize().Fact.Rows()
	} else {
		var err error
		if rows, err = stream(g, *outDir, *segRows); err != nil {
			fmt.Fprintln(os.Stderr, "ssbgen:", err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("SSB scale factor %g (seed %d) generated in %v\n\n", *sf, *seed, elapsed)
	fmt.Printf("%-22s %d rows\n", "LINEORDER:", rows)
	fmt.Printf("%-22s %d rows (expectedRevenue)\n\n", "LINEORDER_BUDGET:", rows)
	for _, h := range g.Schema.Hiers {
		fmt.Printf("%s hierarchy:\n", h.Name())
		for d, level := range h.Levels() {
			fmt.Printf("  %-12s %8d members\n", level, h.Dict(d).Len())
		}
	}
	if err := g.Schema.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ssbgen: schema validation failed:", err)
		os.Exit(1)
	}
	fmt.Println("\nschema validation: OK (every member has a complete roll-up path)")
	if *outDir != "" {
		fmt.Printf("segment directories: %s, %s\n",
			filepath.Join(*outDir, factDir), filepath.Join(*outDir, budgetDir))
	}
}

// stream drains the generator into two segment directories, never
// holding more than one segment of buffered rows in memory.
func stream(g *ssb.Generator, outDir string, segRows int) (int, error) {
	if err := os.MkdirAll(outDir, 0o777); err != nil {
		return 0, err
	}
	opts := colstore.Options{SegmentRows: segRows}
	fw, err := colstore.CreateBulk(filepath.Join(outDir, factDir), g.Schema, opts)
	if err != nil {
		return 0, err
	}
	bw, err := colstore.CreateBulk(filepath.Join(outDir, budgetDir), g.BudgetSchema, opts)
	if err != nil {
		return 0, err
	}
	var bval [1]float64
	n := g.Rows()
	for r := 0; r < n; r++ {
		keys, meas, budget := g.Next()
		if err := fw.Append(keys, meas); err != nil {
			return 0, err
		}
		bval[0] = budget
		if err := bw.Append(keys, bval[:]); err != nil {
			return 0, err
		}
	}
	if err := fw.Close(); err != nil {
		return 0, err
	}
	return n, bw.Close()
}
