// Retail KPI monitoring: constant and absolute assessments over the
// paper's SALES cube — monthly store sales against a fixed goal with the
// 5-star labeling of Example 3.3, and an absolute quartile ranking of
// months (the first statement of Example 4.1).
package main

import (
	"fmt"
	"log"

	assess "github.com/assess-olap/assess"
)

func main() {
	session, ds, err := assess.NewSalesSession(60_000, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SALES cube: %d fact rows\n\n", ds.Fact.Rows())

	// Absolute assessment (no benchmark): rank months into quartiles.
	fmt.Println("── with SALES by month assess storeSales labels quartiles ──")
	res := session.MustExec(`with SALES by month assess storeSales labels quartiles`)
	printTop(res, 6)

	// Constant benchmark with the 5-star scale: normalize the difference
	// from the monthly goal into [0, 1] and grade it. The 5stars labeler
	// is predeclared in the library (Listing 3).
	fmt.Println("\n── monthly sales against a 250k goal, 5-star scale ──")
	res = session.MustExec(`
		with SALES by month
		assess storeSales against 250000
		using minMaxNorm(difference(storeSales, benchmark.storeSales))
		labels 5stars`)
	printTop(res, 6)

	// A derived measure (introduction, case 5): profit = sales − cost,
	// labeled by sign.
	fmt.Println("\n── monthly profit (derived measure) by country ──")
	res = session.MustExec(`
		with SALES by month, country
		assess storeSales against 0
		using difference(storeSales, storeCost)
		labels {[-inf, 0): loss, [0, inf]: profit}`)
	printTop(res, 6)

	// Distribution-based labeling beyond quartiles: let the system pick
	// the number of clusters (Section 3.3.2).
	fmt.Println("\n── store revenue clustered with an optimal k ──")
	res = session.MustExec(`with SALES by store assess storeSales labels clusters`)
	printTop(res, 12)
}

func printTop(res *assess.Result, n int) {
	rows, err := res.Rows()
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range rows {
		if i >= n {
			fmt.Printf("… (%d more cells)\n", len(rows)-n)
			break
		}
		fmt.Printf("%-24v measure=%-12.0f comparison=%-10.3f label=%s\n",
			r.Coordinate, r.Measure, r.Comparison, r.Label)
	}
	fmt.Printf("plan: %v, %v\n", res.Plan.Strategy, res.Total)
}
