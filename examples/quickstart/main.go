// Quickstart: define a cube schema from scratch, load a handful of
// facts, and run an assess statement — the milk-sales KPI example the
// paper opens with (Example 1.1).
package main

import (
	"fmt"
	"log"

	assess "github.com/assess-olap/assess"
)

func main() {
	// A cube schema is a set of linear hierarchies plus measures
	// (Definition 2.1). Levels go from finest to coarsest.
	hDate := assess.NewHierarchy("Date", "month", "year")
	hProduct := assess.NewHierarchy("Product", "product", "category")
	schema := assess.NewSchema("SALES",
		[]*assess.Hierarchy{hDate, hProduct},
		[]assess.Measure{{Name: "quantity", Op: assess.Sum}})

	// Register dimension members: each call gives the full roll-up path.
	months := make([]int32, 0, 12)
	for m := 1; m <= 12; m++ {
		id, err := hDate.AddMember(fmt.Sprintf("2019-%02d", m), "2019")
		if err != nil {
			log.Fatal(err)
		}
		months = append(months, id)
	}
	milk, err := hProduct.AddMember("milk", "Dairy")
	if err != nil {
		log.Fatal(err)
	}
	yogurt, err := hProduct.AddMember("yogurt", "Dairy")
	if err != nil {
		log.Fatal(err)
	}

	// A detailed cube is one fact row per business event.
	fact := assess.NewFactTable(schema)
	milkByMonth := []float64{70, 75, 80, 85, 90, 95, 100, 105, 95, 85, 80, 75}
	for m, qty := range milkByMonth {
		if err := fact.Append([]int32{months[m], milk}, []float64{qty}); err != nil {
			log.Fatal(err)
		}
		if err := fact.Append([]int32{months[m], yogurt}, []float64{qty / 2}); err != nil {
			log.Fatal(err)
		}
	}

	// Open a session and assess: how good is the 2019 milk total against
	// the target KPI of 1000 units?
	session := assess.NewSession()
	if err := session.RegisterCube("SALES", fact); err != nil {
		log.Fatal(err)
	}
	result, err := session.Exec(`
		with SALES
		for year = '2019', product = 'milk'
		by year, product
		assess quantity against 1000
		using ratio(quantity, 1000)
		labels {[0, 0.9): bad, [0.9, 1.1]: acceptable, (1.1, inf): good}`)
	if err != nil {
		log.Fatal(err)
	}
	out, err := result.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 1.1 — milk sales against the 1000-unit KPI:")
	fmt.Print(out)

	// Every cell of the result carries the five components the paper
	// prescribes: coordinate, measure, benchmark, comparison, label.
	rows, err := result.Rows()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("\n%v sold %.0f units against a target of %.0f (ratio %.3f) → %s\n",
			r.Coordinate, r.Measure, r.Benchmark, r.Comparison, r.Label)
	}
}
