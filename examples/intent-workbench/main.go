// Intent workbench: the future-work extensions of the paper's Section 8,
// all implemented here — ancestor benchmarks (milk against its
// category), descriptive level properties (per-capita sales), statement
// completion with interest ranking, coordinate-dependent labeling
// (quartiles within each country), and cost-based plan selection.
package main

import (
	"fmt"
	"log"

	assess "github.com/assess-olap/assess"
)

func main() {
	session, ds, err := assess.NewSalesSession(60_000, 12)
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Materialize("SALES", "product", "country"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SALES cube: %d fact rows (view on ⟨product, country⟩ materialized)\n\n", ds.Fact.Rows())

	// 1. Ancestor benchmark: how much of its category does each dairy
	// product carry?
	fmt.Println("── ancestor benchmark: each dairy product vs its category total ──")
	res := session.MustExec(`
		with SALES
		for category = 'Dairy'
		by product
		assess quantity against ancestor category
		using ratio(quantity, benchmark.quantity)
		labels {[0, 0.1): minor, [0.1, 0.3]: solid, (0.3, 1]: flagship}`)
	printRows(res, 8)

	// 2. Level properties: per-capita sales via country.population.
	fmt.Println("\n── level property: per-capita quantities by country ──")
	res = session.MustExec(`
		with SALES by country
		assess quantity
		using ratio(quantity, country.population)
		labels quartiles`)
	printRows(res, 5)

	// 3. Coordinate-dependent labeling: rank products within each country
	// rather than globally.
	fmt.Println("\n── within-labeling: product quartiles inside each country ──")
	res = session.MustExec(`
		with SALES by product, country
		assess storeSales labels quartiles within country`)
	printRows(res, 6)

	// 4. Statement completion: give the system a partial intention and
	// let it propose ranked, executable assessments.
	fmt.Println("\n── statement completion for a partial intention ──")
	sugs, err := session.Suggest(`
		with SALES
		for country = 'Italy'
		by product, country
		assess quantity`, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, sg := range sugs {
		fmt.Printf("%d. interest %.3f (%d cells): %s\n", i+1, sg.Score, sg.Cells, sg.Note)
	}

	// 5. Cost-based plan selection: estimated costs per feasible plan,
	// and the plan the optimizer picks.
	fmt.Println("\n── cost-based optimization ──")
	stmt := `with SALES for country = 'Italy' by product, country
		assess quantity against country = 'France'
		using difference(quantity, benchmark.quantity)
		labels {[-inf, 0): down, [0, inf]: up}`
	costs, err := session.ExplainCosts(stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(costs)
	p, err := session.PrepareCostBased(stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer picks %v\n", p.Strategy)
}

func printRows(res *assess.Result, n int) {
	rows, err := res.Rows()
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range rows {
		if i >= n {
			fmt.Printf("… (%d more cells)\n", len(rows)-n)
			break
		}
		fmt.Printf("%-36v comparison=%-10.3f label=%s\n", r.Coordinate, r.Comparison, r.Label)
	}
}
