// Market comparison: sibling and external benchmarks over the SALES
// cube — the paper's running example of assessing Italian fresh-fruit
// sales against France (Examples 3.2 and 4.5), plus an external
// golden-standard comparison against the SALES_TARGET budget cube, with
// the three execution plans compared side by side.
package main

import (
	"fmt"
	"log"

	assess "github.com/assess-olap/assess"
)

const siblingStatement = `
	with SALES
	for type = 'Fresh Fruit', country = 'Italy'
	by product, country
	assess quantity against country = 'France'
	using percOfTotal(difference(quantity, benchmark.quantity))
	labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}`

func main() {
	// First on the paper's miniature Figure 1 dataset, to see the exact
	// numbers of the worked example.
	mini := assess.FigureOneDataset()
	miniSession := assess.NewSession()
	if err := miniSession.RegisterCube("SALES", mini.Fact); err != nil {
		log.Fatal(err)
	}
	fmt.Println("── Figure 1 worked example: Italy vs France, fresh fruit ──")
	res := miniSession.MustExec(siblingStatement)
	render(res)

	// The same intention under each execution plan of Section 5: the
	// results are identical, the operator sequences are not.
	for _, strategy := range []assess.Strategy{assess.NP, assess.JOP, assess.POP} {
		p, err := miniSession.PrepareWith(siblingStatement, strategy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(p.Explain())
	}

	// Now at scale, with an external benchmark: actual sales against the
	// reconciled SALES_TARGET budget cube (Section 3.1, external
	// benchmarks).
	session, ds, err := assess.NewSalesSession(80_000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("── budget adherence by country (%d fact rows) ──\n", ds.Fact.Rows())
	res = session.MustExec(`
		with SALES by year, country
		assess storeSales against SALES_TARGET.expectedSales
		using normDifference(storeSales, benchmark.expectedSales)
		labels {[-inf, -0.02): under, [-0.02, 0.02]: onBudget, (0.02, inf): over}`)
	render(res)

	// assess* keeps target cells with no benchmark match, labeling them
	// null — compare a sparse sibling slice.
	fmt.Println("── assess*: Italian products against Greece (sparser) ──")
	res = session.MustExec(`
		with SALES
		for country = 'Italy'
		by product, country
		assess* quantity against country = 'Greece'
		using difference(quantity, benchmark.quantity)
		labels {[-inf, 0): down, [0, inf]: up}`)
	nulls := 0
	rows, err := res.Rows()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		if r.Label == "null" {
			nulls++
		}
	}
	fmt.Printf("%d cells, %d unmatched (null label)\n", len(rows), nulls)
}

func render(res *assess.Result) {
	out, err := res.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	fmt.Printf("(plan %v, %v)\n\n", res.Plan.Strategy, res.Total)
}
