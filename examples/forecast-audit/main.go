// Forecast audit: past benchmarks over the Star Schema Benchmark cube —
// assess each supplier's June 1998 revenue against the value predicted
// by linear regression over the previous six months (Section 3.1, past
// benchmarks), and compare the three execution plans' wall times and
// per-phase breakdowns (the Figure 4 experiment in miniature).
package main

import (
	"fmt"
	"log"

	assess "github.com/assess-olap/assess"
)

const statement = `
	with LINEORDER
	for month = '1998-06'
	by month, supplier
	assess revenue against past 6
	using ratio(revenue, benchmark.revenue)
	labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}`

func main() {
	session, ds, err := assess.NewSSBSession(0.02, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LINEORDER: %d fact rows (SF %g)\n\n", ds.Fact.Rows(), ds.SF)

	res := session.MustExec(statement)
	rows, err := res.Rows()
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.Label]++
	}
	fmt.Printf("assessed %d suppliers: %d worse, %d fine, %d better\n\n",
		len(rows), counts["worse"], counts["fine"], counts["better"])
	for i, r := range rows {
		if i >= 5 {
			fmt.Println("…")
			break
		}
		fmt.Printf("%-22s actual %10.0f predicted %10.0f ratio %5.2f → %s\n",
			r.Coordinate[1], r.Measure, r.Benchmark, r.Comparison, r.Label)
	}

	// The same statement under all three plans: identical results,
	// different costs (Section 6.2).
	fmt.Println("\nplan comparison:")
	for _, strategy := range []assess.Strategy{assess.NP, assess.JOP, assess.POP} {
		r, err := session.ExecWith(statement, strategy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4v %10v   %s\n", strategy, r.Total, r.Breakdown.String())
	}

	// Swap the predictor: a custom moving-average function registered on
	// the session can replace the library regression inside using.
	fmt.Println("\nmoving-average cross-check (pivot the series client-side):")
	res2 := session.MustExec(`
		with LINEORDER
		for month = '1998-06'
		by month, supplier
		assess revenue against past 6
		using normDifference(revenue, benchmark.revenue)
		labels zscore`)
	rows2, err := res2.Rows()
	if err != nil {
		log.Fatal(err)
	}
	extremes := 0
	for _, r := range rows2 {
		if r.Label == "+2σ" || r.Label == "-2σ" || r.Label == "+3σ" || r.Label == "-3σ" {
			extremes++
		}
	}
	fmt.Printf("z-score labeling flags %d suppliers beyond ±2σ of the forecast error\n", extremes)
}
